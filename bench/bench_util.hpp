/**
 * @file
 * Shared helpers for the benchmark harness: every bench binary prints the
 * rows/series of one paper table or figure, prefixed with a banner naming
 * the artifact it regenerates, and emits a machine-readable
 * `BENCH_<name>.json` twin of the human table so the performance
 * trajectory can be tracked across PRs.
 */
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/table.hpp"
#include "eval/engine.hpp"
#include "eval/runner.hpp"
#include "eval/scenario.hpp"
#include "nn/workloads.hpp"

namespace bitwave::bench {

/// Print the artifact banner ("=== Fig. 5: ... ===").
inline void
banner(const std::string &artifact, const std::string &caption)
{
    std::printf("\n=== %s: %s ===\n\n", artifact.c_str(), caption.c_str());
}

/// Print the standard runner footer every bench emits.
inline void
print_runner_report(const eval::RunnerReport &report)
{
    std::printf("[runner: %d threads, %d shards, %.2fs wall, %.2fx "
                "parallel speedup]\n", report.threads_used, report.shards,
                report.wall_seconds, report.speedup());
}

// ---------------------------------------------------------------------------
// Machine-readable bench output
// ---------------------------------------------------------------------------

/// One scalar cell of the JSON report (string / number / bool).
struct JsonValue
{
    enum class Kind { kString, kNumber, kBool };
    Kind kind = Kind::kNumber;
    std::string str;
    double num = 0.0;
    bool boolean = false;

    JsonValue(const char *v) : kind(Kind::kString), str(v) {}
    JsonValue(std::string v) : kind(Kind::kString), str(std::move(v)) {}
    JsonValue(bool v) : kind(Kind::kBool), boolean(v) {}
    template <typename T,
              std::enable_if_t<std::is_arithmetic_v<T> &&
                                   !std::is_same_v<T, bool>, int> = 0>
    JsonValue(T v) : num(static_cast<double>(v)) {}
};

/// A flat key/value record (one row or the params block).
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;

/**
 * Append the paper-anchor keys CI's deviation gate greps for (`anchor`
 * and `deviation` on rows; `<prefix>_anchor` / `<prefix>_deviation` on
 * params via the overload below). One definition keeps the key
 * contract between the anchored benches (fig14/fig15/fig17) and the
 * workflow assertion in sync.
 */
inline void
add_anchor(JsonObject &row, double value, double anchor)
{
    row.emplace_back("anchor", anchor);
    row.emplace_back("deviation", value / anchor - 1.0);
}


/**
 * Collects the bench's parameters and result rows and writes
 * `BENCH_<name>.json` (name, params, rows, wall-time) next to the human
 * tables. Written on destruction or by an explicit write().
 */
class JsonReport
{
  public:
    explicit JsonReport(std::string name)
        : name_(std::move(name)),
          start_(std::chrono::steady_clock::now())
    {
    }

    JsonReport(const JsonReport &) = delete;
    JsonReport &operator=(const JsonReport &) = delete;

    ~JsonReport() { write(); }

    /// Record one sweep parameter ("group_size": 16, ...).
    void param(const std::string &key, JsonValue value)
    {
        params_.emplace_back(key, std::move(value));
    }

    /// Append one result row.
    void add_row(JsonObject row) { rows_.push_back(std::move(row)); }

    /// Append the standard fields of one scenario result, plus @p extra.
    void add_result(const eval::ScenarioResult &r, JsonObject extra = {})
    {
        JsonObject row{
            {"scenario", r.name},
            {"engine", r.engine},
            {"accelerator", r.accelerator},
            {"workload", r.workload},
            {"cycles", r.total_cycles},
            {"energy_pj", r.energy.total_pj},
            {"runtime_ms", r.runtime_ms()},
            {"tops_per_watt", r.tops_per_watt()},
            {"eval_wall_s", r.wall_seconds},
        };
        for (auto &kv : extra) {
            row.push_back(std::move(kv));
        }
        add_row(std::move(row));
    }

    /// Write BENCH_<name>.json to the working directory (best effort).
    /// The write is atomic — temp file + rename — so a bench that
    /// crashes mid-report never leaves a truncated JSON behind.
    void write()
    {
        if (written_) {
            return;
        }
        written_ = true;
        const double wall = std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start_).count();
        const std::string path = "BENCH_" + name_ + ".json";
        const std::string tmp = path + ".tmp";
        std::FILE *f = std::fopen(tmp.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "bench: cannot write %s\n", tmp.c_str());
            return;
        }
        std::fprintf(f, "{\n  \"bench\": \"%s\",\n", escape(name_).c_str());
        std::fprintf(f, "  \"wall_time_s\": %.6f,\n", wall);
        std::fprintf(f, "  \"params\": ");
        print_object(f, params_, "  ");
        std::fprintf(f, ",\n  \"rows\": [");
        for (std::size_t i = 0; i < rows_.size(); ++i) {
            std::fprintf(f, "%s\n    ", i == 0 ? "" : ",");
            print_object(f, rows_[i], "    ");
        }
        std::fprintf(f, "%s]\n}\n", rows_.empty() ? "" : "\n  ");
        const bool ok = std::fflush(f) == 0 && std::ferror(f) == 0;
        std::fclose(f);
        if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
            std::fprintf(stderr, "bench: cannot finalize %s\n",
                         path.c_str());
            std::remove(tmp.c_str());
            return;
        }
        std::printf("\n[bench json: %s]\n", path.c_str());
    }

  private:
    static std::string escape(const std::string &s)
    {
        std::string out;
        out.reserve(s.size());
        for (char c : s) {
            if (c == '"' || c == '\\') {
                out += '\\';
                out += c;
            } else if (c == '\n') {
                out += "\\n";
            } else {
                out += c;
            }
        }
        return out;
    }

    static void print_object(std::FILE *f, const JsonObject &obj,
                             const char *indent)
    {
        std::fprintf(f, "{");
        for (std::size_t i = 0; i < obj.size(); ++i) {
            std::fprintf(f, "%s\n%s  \"%s\": ", i == 0 ? "" : ",", indent,
                         escape(obj[i].first).c_str());
            const JsonValue &v = obj[i].second;
            switch (v.kind) {
              case JsonValue::Kind::kString:
                std::fprintf(f, "\"%s\"", escape(v.str).c_str());
                break;
              case JsonValue::Kind::kNumber:
                std::fprintf(f, "%.17g", v.num);
                break;
              case JsonValue::Kind::kBool:
                std::fprintf(f, "%s", v.boolean ? "true" : "false");
                break;
            }
        }
        if (obj.empty()) {
            std::fprintf(f, "}");
        } else {
            std::fprintf(f, "\n%s}", indent);
        }
    }

    std::string name_;
    std::chrono::steady_clock::time_point start_;
    JsonObject params_;
    std::vector<JsonObject> rows_;
    bool written_ = false;
};

/// Params-block variant of add_anchor(): `<name>`, `<name>_anchor`,
/// `<name>_deviation`.
inline void
add_anchor_param(JsonReport &json, const std::string &name, double value,
                 double anchor)
{
    json.param(name, value);
    json.param(name + "_anchor", anchor);
    json.param(name + "_deviation", value / anchor - 1.0);
}

}  // namespace bitwave::bench
