/**
 * @file
 * Ablations — two design choices DESIGN.md calls out:
 *  (1) representation: BCS with two's complement instead of
 *      sign-magnitude (the Section III-A vs III-B contrast at system
 *      level);
 *  (2) group size: fixed G = 8/16/32 vs per-layer best, in real
 *      compression ratio.
 */
#include "bench_util.hpp"
#include "compress/bcs.hpp"
#include "sparsity/bitcolumn.hpp"

using namespace bitwave;

int
main()
{
    bench::banner("Ablation: representation",
                  "bit-column sparsity and CR, 2C vs SM (G = 16)");
    Table t({"network", "col sparsity 2C", "col sparsity SM", "CR 2C",
             "CR SM"});
    for (auto id : kAllWorkloads) {
        const auto &w = get_workload(id);
        BitColumnStats s2c, ssm;
        std::int64_t orig = 0;
        double c2c = 0.0, csm = 0.0;
        for (const auto &l : w.layers) {
            s2c.merge(analyze_bit_columns(
                l.weights, 16, Representation::kTwosComplement));
            ssm.merge(analyze_bit_columns(
                l.weights, 16, Representation::kSignMagnitude));
            const auto a = bcs_compress(l.weights, 16,
                                        Representation::kTwosComplement);
            const auto b = bcs_compress(l.weights, 16,
                                        Representation::kSignMagnitude);
            orig += a.original_bits();
            c2c += static_cast<double>(a.compressed_bits());
            csm += static_cast<double>(b.compressed_bits());
        }
        t.add_row({w.name, fmt_percent(s2c.column_sparsity()),
                   fmt_percent(ssm.column_sparsity()),
                   fmt_ratio(static_cast<double>(orig) / c2c),
                   fmt_ratio(static_cast<double>(orig) / csm)});
    }
    std::printf("%s", t.render().c_str());

    bench::banner("Ablation: group size",
                  "real CR under fixed vs per-layer-best group size");
    Table g({"network", "G=8", "G=16", "G=32", "per-layer best"});
    for (auto id : kAllWorkloads) {
        const auto &w = get_workload(id);
        double comp[3] = {};
        double best = 0.0;
        std::int64_t orig = 0;
        for (const auto &l : w.layers) {
            const int sizes[3] = {8, 16, 32};
            double layer_best = 0.0;
            for (int i = 0; i < 3; ++i) {
                const auto c = bcs_compress(l.weights, sizes[i],
                                            Representation::kSignMagnitude);
                comp[i] += static_cast<double>(c.compressed_bits());
                layer_best = layer_best == 0.0
                    ? static_cast<double>(c.compressed_bits())
                    : std::min(layer_best,
                               static_cast<double>(c.compressed_bits()));
            }
            best += layer_best;
            orig += l.weights.numel() * 8;
        }
        g.add_row({w.name,
                   fmt_ratio(static_cast<double>(orig) / comp[0]),
                   fmt_ratio(static_cast<double>(orig) / comp[1]),
                   fmt_ratio(static_cast<double>(orig) / comp[2]),
                   fmt_ratio(static_cast<double>(orig) / best)});
    }
    std::printf("%s", g.render().c_str());
    std::printf("\nexpected shape: SM dominates 2C everywhere; layer-wise "
                "tunable G (the hardware feature) beats any fixed G.\n");
    return 0;
}
