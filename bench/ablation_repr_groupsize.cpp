/**
 * @file
 * Ablations — two design choices DESIGN.md calls out:
 *  (1) representation: BCS with two's complement instead of
 *      sign-magnitude (the Section III-A vs III-B contrast at system
 *      level);
 *  (2) group size: fixed G = 8/16/32 vs per-layer best, in real
 *      compression ratio.
 * One kStats+compression scenario per (workload, group size), run as a
 * parallel ScenarioRunner batch; both ablations read off that grid.
 */
#include <algorithm>

#include "bench_util.hpp"

using namespace bitwave;

int
main()
{
    bench::JsonReport json("ablation_repr_groupsize");

    const int group_sizes[] = {8, 16, 32};
    std::vector<eval::Scenario> scenarios;
    for (auto id : kAllWorkloads) {
        for (int g : group_sizes) {
            eval::Scenario s;
            s.engine = eval::EngineKind::kStats;
            s.workload = id;
            s.stats.group_size = g;
            s.stats.bcs = true;
            scenarios.push_back(std::move(s));
        }
    }
    eval::RunnerReport report;
    const auto results = eval::ScenarioRunner().run(scenarios, &report);
    const std::size_t per_workload = std::size(group_sizes);

    bench::banner("Ablation: representation",
                  "bit-column sparsity and CR, 2C vs SM (G = 16)");
    Table t({"network", "col sparsity 2C", "col sparsity SM", "CR 2C",
             "CR SM"});
    for (std::size_t w = 0; w * per_workload < results.size(); ++w) {
        // group_sizes[1] == 16 is the representation-ablation point.
        const auto &r = results[w * per_workload + 1];
        BitColumnStats s2c, ssm;
        double orig = 0.0, c2c = 0.0, csm = 0.0;
        for (const auto &l : r.layers) {
            s2c.merge(l.stats->columns_2c);
            ssm.merge(l.stats->columns_sm);
            orig += static_cast<double>(l.stats->weight_bits);
            c2c += static_cast<double>(l.stats->bcs_2c_bits);
            csm += static_cast<double>(l.stats->bcs_sm_bits);
        }
        t.add_row({r.workload, fmt_percent(s2c.column_sparsity()),
                   fmt_percent(ssm.column_sparsity()),
                   fmt_ratio(orig / c2c), fmt_ratio(orig / csm)});
        json.add_row({{"ablation", "representation"},
                      {"workload", r.workload},
                      {"col_sparsity_2c", s2c.column_sparsity()},
                      {"col_sparsity_sm", ssm.column_sparsity()},
                      {"cr_2c", orig / c2c},
                      {"cr_sm", orig / csm}});
    }
    std::printf("%s", t.render().c_str());

    bench::banner("Ablation: group size",
                  "real CR under fixed vs per-layer-best group size");
    Table g({"network", "G=8", "G=16", "G=32", "per-layer best"});
    for (std::size_t w = 0; w * per_workload < results.size(); ++w) {
        const auto *r = &results[w * per_workload];
        double comp[3] = {};
        double best = 0.0, orig = 0.0;
        const std::size_t layers = r[0].layers.size();
        for (std::size_t l = 0; l < layers; ++l) {
            double layer_best = 0.0;
            for (std::size_t i = 0; i < per_workload; ++i) {
                const auto bits =
                    static_cast<double>(r[i].layers[l].stats->bcs_sm_bits);
                comp[i] += bits;
                layer_best =
                    layer_best == 0.0 ? bits : std::min(layer_best, bits);
            }
            best += layer_best;
            orig += static_cast<double>(r[0].layers[l].stats->weight_bits);
        }
        g.add_row({r[0].workload, fmt_ratio(orig / comp[0]),
                   fmt_ratio(orig / comp[1]), fmt_ratio(orig / comp[2]),
                   fmt_ratio(orig / best)});
        json.add_row({{"ablation", "group_size"},
                      {"workload", r[0].workload},
                      {"cr_g8", orig / comp[0]},
                      {"cr_g16", orig / comp[1]},
                      {"cr_g32", orig / comp[2]},
                      {"cr_best", orig / best}});
    }
    std::printf("%s", g.render().c_str());
    std::printf("\nexpected shape: SM dominates 2C everywhere; layer-wise "
                "tunable G (the hardware feature) beats any fixed G.\n");
    bench::print_runner_report(report);
    return 0;
}
