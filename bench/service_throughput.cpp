/**
 * @file
 * Service throughput bench — the ROADMAP item 1 headline: sustained
 * requests/s and p50/p99 latency of the evaluation service under a
 * synthetic multi-tenant trace (seeded, Zipf-distributed over the
 * benchmark networks; mixed full-grid evaluations, single-layer DSE
 * probes, Bit-Flip variant sweeps and statistics queries).
 *
 * Two replays of the same trace run through two service instances: a
 * cold pass that pays workload synthesis and cache fills, then the
 * measured warm pass — the steady-state regime a long-running service
 * operates in. After the warm pass every *distinct* request in the
 * trace is re-evaluated directly through a one-shot ScenarioRunner and
 * compared field-for-field against the service's answer: the
 * `bit_identical` flag in BENCH_service_throughput.json is CI's hard
 * gate on the service determinism contract (dedup, dynamic batching and
 * steal order are pure scheduling).
 *
 * A third replay runs the trace with the observability layer fully
 * armed (metrics + request-span tracing) through another fresh
 * service: `bit_identical_traced` gates that instrumentation never
 * changes results, the Chrome trace-event JSON for the whole replay
 * lands in `--trace <path>` (default service_throughput_trace.json),
 * and `trace_overhead_frac` reports the armed-vs-warm wall ratio.
 * The warm service's always-on phase histograms decompose latency
 * into queue-wait / batch-form / compute p50/p90/p99 JSON keys.
 *
 * A fourth replay runs the same trace under a seeded 1% wildcard
 * transient fault storm (`--faults [seed]` picks the storm seed; CI
 * sweeps it): the self-healing layer retries, bisects and quarantines,
 * and `bit_identical_under_faults` — every completion still matching
 * the direct goldens — is the second hard gate.  `--metrics` prints
 * the full Prometheus snapshot after the run.
 */
#include <algorithm>
#include <cstdlib>
#include <thread>
#include <unordered_map>

#include "bench_util.hpp"
#include "common/fault.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"

using namespace bitwave;

namespace {

service::ServiceOptions
bench_service_options()
{
    service::ServiceOptions options;
    options.queue_capacity = 512;
    options.policy = service::BackpressurePolicy::kBlock;
    options.dispatchers = 1;
    options.max_batch = 16;
    options.linger_seconds = 0.0005;
    return options;
}

}  // namespace

int
main(int argc, char **argv)
{
    std::uint64_t fault_seed = 0x5eed;
    bool print_metrics = false;
    std::string trace_path = "service_throughput_trace.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--faults" && i + 1 < argc) {
            fault_seed = std::strtoull(argv[i + 1], nullptr, 0);
            ++i;
        } else if (arg == "--metrics") {
            print_metrics = true;
        } else if (arg == "--trace" && i + 1 < argc) {
            trace_path = argv[i + 1];
            ++i;
        }
    }
    bench::banner("Service throughput",
                  "multi-tenant trace replay: latency, requests/s, dedup "
                  "and bit-identity vs direct evaluation");
    bench::JsonReport json("service_throughput");

    bench::TraceSpec spec;
    spec.requests = 1200;
    spec.seed = 0xB17;
    const auto trace = bench::make_multitenant_trace(spec);

    // Cold pass: first-touch costs (synthesis, bit-plane packing,
    // Bit-Flip twins) land here, exactly once per content hash.
    double cold_wall = 0.0;
    {
        service::EvalService svc(bench_service_options());
        cold_wall = bench::replay_trace(svc, trace).wall_seconds;
    }

    // Warm pass: the measured steady state, through a fresh service so
    // queue/batch dynamics replay fully — only the process-wide content
    // caches persist, as they would across requests in a real server.
    const auto bitplanes_before = bitplane_cache_counters();
    service::EvalService svc(bench_service_options());
    const auto replay = bench::replay_trace(svc, trace);
    const auto stats = svc.stats();
    const auto bitplanes_after = bitplane_cache_counters();

    std::vector<double> latencies_ms;
    std::size_t done = 0;
    for (const auto &ticket : replay.tickets) {
        if (ticket.status() == service::TicketStatus::kDone) {
            ++done;
            latencies_ms.push_back(ticket.latency_seconds() * 1e3);
        }
    }
    const double p50 = bench::percentile(latencies_ms, 0.50);
    const double p99 = bench::percentile(latencies_ms, 0.99);
    const double requests_per_second = replay.wall_seconds > 0.0
        ? static_cast<double>(trace.size()) / replay.wall_seconds
        : 0.0;
    const double dedup_hit_rate = stats.submitted > 0
        ? static_cast<double>(stats.dedup_hits) /
            static_cast<double>(stats.submitted)
        : 0.0;
    const double warm_bitplane_hits = static_cast<double>(
        bitplanes_after.hits - bitplanes_before.hits);
    const double warm_bitplane_total = warm_bitplane_hits +
        static_cast<double>(bitplanes_after.misses -
                            bitplanes_before.misses);
    const double bitplane_hit_rate = warm_bitplane_total > 0.0
        ? warm_bitplane_hits / warm_bitplane_total
        : 0.0;

    // Determinism gate: every distinct request in the trace, evaluated
    // directly (one-shot runner, no service, no batching), must match
    // the service's completed result bit for bit.
    bool bit_identical = true;
    std::size_t distinct = 0;
    std::unordered_map<std::uint64_t, eval::ScenarioResult> golden;
    {
        std::unordered_map<std::uint64_t, std::size_t> first_index;
        for (std::size_t i = 0; i < trace.size(); ++i) {
            first_index.emplace(
                eval::scenario_fingerprint(trace[i].scenario), i);
        }
        distinct = first_index.size();
        for (const auto &[fingerprint, i] : first_index) {
            auto direct = eval::ScenarioRunner().run({trace[i].scenario});
            if (!bench::identical_result(replay.tickets[i].result(),
                                         direct.front())) {
                bit_identical = false;
                std::fprintf(stderr,
                             "MISMATCH: request %zu (%s) differs from "
                             "direct evaluation\n", i,
                             trace[i].scenario.name().c_str());
            }
            golden.emplace(fingerprint, std::move(direct.front()));
        }
    }

    // Traced replay: the same trace with metrics and span tracing
    // fully armed, through another fresh service.  Instrumentation
    // must be pure observation — every completion still matches the
    // goldens — and its wall-clock cost is reported (not gated; CI
    // runners are too noisy for a hard timing gate).
    const bool trace_env_armed = trace::enabled();
    if (!trace_env_armed) {
        trace::clear();
        trace::start();
    }
    const bool metrics_env_armed = metrics::enabled();
    metrics::set_enabled(true);
    service::EvalService traced_svc(bench_service_options());
    const auto traced_replay = bench::replay_trace(traced_svc, trace);
    metrics::set_enabled(metrics_env_armed);
    if (!trace_env_armed) {
        trace::stop();
    }
    bool bit_identical_traced = true;
    std::size_t traced_done = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const auto &ticket = traced_replay.tickets[i];
        if (ticket.status() != service::TicketStatus::kDone) {
            continue;
        }
        ++traced_done;
        const auto it =
            golden.find(eval::scenario_fingerprint(trace[i].scenario));
        if (it == golden.end() ||
            !bench::identical_result(ticket.result(), it->second)) {
            bit_identical_traced = false;
            std::fprintf(stderr,
                         "TRACED MISMATCH: request %zu (%s) differs "
                         "from the untraced golden\n", i,
                         trace[i].scenario.name().c_str());
        }
    }
    const std::size_t trace_events = trace::snapshot_events().size();
    const std::size_t trace_written = trace::write_json(trace_path);
    const double trace_overhead_frac = replay.wall_seconds > 0.0
        ? traced_replay.wall_seconds / replay.wall_seconds - 1.0
        : 0.0;

    // Fault-storm replay: the same trace under a seeded 1% wildcard
    // transient storm. The robustness gate: the service self-heals
    // (retry, bisection, quarantine) and everything it completes is
    // still bit-identical to the fault-free goldens.
    const auto faults_before = fault::stats();
    service::ServiceOptions fault_options = bench_service_options();
    // Per-layer chunks on a real (>= 2 worker) pool: each chunk is a
    // fault draw, so the storm sees hundreds of opportunities instead
    // of a handful per batch — the 1-thread inline path would collapse
    // a whole batch into one draw.
    fault_options.runner.threads = std::max(
        2u, std::thread::hardware_concurrency());
    fault_options.runner.shard_layers = 1;
    fault_options.retry.max_attempts = 6;
    fault_options.retry.backoff_seconds = 0.001;
    fault_options.retry.max_backoff_seconds = 0.02;
    service::EvalService fault_svc(fault_options);
    fault::configure("*=0.01:transient", fault_seed);
    const auto fault_replay = bench::replay_trace(fault_svc, trace);
    fault::reset();
    const auto fault_stats = fault_svc.stats();
    const auto faults_injected =
        fault::stats().fired - faults_before.fired;

    bool bit_identical_under_faults = true;
    std::vector<double> fault_latencies_ms;
    std::size_t fault_done = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const auto &ticket = fault_replay.tickets[i];
        if (ticket.status() != service::TicketStatus::kDone) {
            continue;
        }
        ++fault_done;
        fault_latencies_ms.push_back(ticket.latency_seconds() * 1e3);
        const auto it =
            golden.find(eval::scenario_fingerprint(trace[i].scenario));
        if (it == golden.end() ||
            !bench::identical_result(ticket.result(), it->second)) {
            bit_identical_under_faults = false;
            std::fprintf(stderr,
                         "FAULT MISMATCH: request %zu (%s) differs from "
                         "the fault-free golden\n", i,
                         trace[i].scenario.name().c_str());
        }
    }
    const double fault_p99 = bench::percentile(fault_latencies_ms, 0.99);

    json.param("requests", trace.size());
    json.param("distinct_requests", distinct);
    json.param("trace_seed", spec.seed);
    json.param("zipf_exponent", spec.zipf_exponent);
    json.param("completed", done);
    json.param("cold_wall_s", cold_wall);
    json.param("warm_wall_s", replay.wall_seconds);
    json.param("p50_latency_ms", p50);
    json.param("p99_latency_ms", p99);
    json.param("requests_per_second", requests_per_second);
    json.param("dedup_hit_rate", dedup_hit_rate);
    json.param("dedup_hits", stats.dedup_hits);
    json.param("bitplane_cache_hit_rate", bitplane_hit_rate);
    json.param("batches", stats.batches);
    json.param("batched_jobs", stats.batched_jobs);
    json.param("steals", stats.steals);
    json.param("peak_queue_depth", stats.peak_queue_depth);
    json.param("bit_identical", bit_identical);
    // Latency decomposition from the warm service's always-on phase
    // histograms (nanosecond samples, reported in ms).
    const auto phase_ms = [](const metrics::HistogramSnapshot &h,
                             double q) { return h.quantile(q) / 1e6; };
    json.param("queue_wait_p50_ms", phase_ms(stats.queue_wait_ns, 0.50));
    json.param("queue_wait_p90_ms", phase_ms(stats.queue_wait_ns, 0.90));
    json.param("queue_wait_p99_ms", phase_ms(stats.queue_wait_ns, 0.99));
    json.param("batch_p50_ms", phase_ms(stats.batch_ns, 0.50));
    json.param("batch_p90_ms", phase_ms(stats.batch_ns, 0.90));
    json.param("batch_p99_ms", phase_ms(stats.batch_ns, 0.99));
    json.param("compute_p50_ms", phase_ms(stats.compute_ns, 0.50));
    json.param("compute_p90_ms", phase_ms(stats.compute_ns, 0.90));
    json.param("compute_p99_ms", phase_ms(stats.compute_ns, 0.99));
    json.param("traced_wall_s", traced_replay.wall_seconds);
    json.param("traced_completed", traced_done);
    json.param("trace_overhead_frac", trace_overhead_frac);
    json.param("trace_events", trace_events);
    json.param("trace_path", trace_path);
    json.param("bit_identical_traced", bit_identical_traced);
    json.param("fault_seed", fault_seed);
    json.param("faults_injected", faults_injected);
    json.param("fault_completed", fault_done);
    json.param("fault_retries", fault_stats.retries);
    json.param("fault_quarantined", fault_stats.quarantined);
    json.param("fault_p99_latency_ms", fault_p99);
    json.param("bit_identical_under_faults", bit_identical_under_faults);

    Table t({"metric", "value"});
    t.add_row({"requests", strprintf("%zu (%zu distinct)", trace.size(),
                                     distinct)});
    t.add_row({"completed", strprintf("%zu", done)});
    t.add_row({"cold wall", strprintf("%.2fs", cold_wall)});
    t.add_row({"warm wall", strprintf("%.2fs", replay.wall_seconds)});
    t.add_row({"requests/s (warm)", strprintf("%.1f",
                                              requests_per_second)});
    t.add_row({"p50 latency", strprintf("%.2f ms", p50)});
    t.add_row({"p99 latency", strprintf("%.2f ms", p99)});
    t.add_row({"dedup hit rate", fmt_percent(dedup_hit_rate, 1)});
    t.add_row({"bit-plane cache hit rate",
               fmt_percent(bitplane_hit_rate, 1)});
    t.add_row({"batches", strprintf("%llu (%.1f jobs/batch)",
                                    static_cast<unsigned long long>(
                                        stats.batches),
                                    stats.batches > 0
                                        ? static_cast<double>(
                                              stats.batched_jobs) /
                                            static_cast<double>(
                                                stats.batches)
                                        : 0.0)});
    t.add_row({"bit-identical vs direct", bit_identical ? "yes" : "NO"});
    t.add_row({"phase p50/p99 (queue)",
               strprintf("%.2f / %.2f ms",
                         phase_ms(stats.queue_wait_ns, 0.50),
                         phase_ms(stats.queue_wait_ns, 0.99))});
    t.add_row({"phase p50/p99 (batch)",
               strprintf("%.2f / %.2f ms", phase_ms(stats.batch_ns, 0.50),
                         phase_ms(stats.batch_ns, 0.99))});
    t.add_row({"phase p50/p99 (compute)",
               strprintf("%.2f / %.2f ms",
                         phase_ms(stats.compute_ns, 0.50),
                         phase_ms(stats.compute_ns, 0.99))});
    t.add_row({"traced wall (metrics+spans)",
               strprintf("%.2fs (%+.1f%% vs warm)",
                         traced_replay.wall_seconds,
                         trace_overhead_frac * 100.0)});
    t.add_row({"trace events",
               strprintf("%zu (%zu written to %s)", trace_events,
                         trace_written, trace_path.c_str())});
    t.add_row({"bit-identical traced",
               bit_identical_traced ? "yes" : "NO"});
    t.add_row({"fault storm (1% transient)",
               strprintf("seed %llu, %llu injected",
                         static_cast<unsigned long long>(fault_seed),
                         static_cast<unsigned long long>(faults_injected))});
    t.add_row({"  completed / retried / quarantined",
               strprintf("%zu / %llu / %llu", fault_done,
                         static_cast<unsigned long long>(
                             fault_stats.retries),
                         static_cast<unsigned long long>(
                             fault_stats.quarantined))});
    t.add_row({"  p99 latency", strprintf("%.2f ms", fault_p99)});
    t.add_row({"  bit-identical under faults",
               bit_identical_under_faults ? "yes" : "NO"});
    std::printf("%s", t.render().c_str());
    std::printf("\nEvery distinct request re-evaluated standalone and "
                "compared field-for-field; dedup coalesced %llu of %llu "
                "submissions onto in-flight twins.\n",
                static_cast<unsigned long long>(stats.dedup_hits),
                static_cast<unsigned long long>(stats.submitted));
    if (print_metrics) {
        std::printf("\n%s",
                    metrics::render_prometheus(metrics::snapshot())
                        .c_str());
    }
    return (bit_identical && bit_identical_traced &&
            bit_identical_under_faults)
        ? 0
        : 1;
}
