/**
 * @file
 * Fig. 9 — PE utilization of fixed SU mappings (XY / CK / XFx) on the
 * 4096-lane 1bx8b array and the 512-lane 8bx8b array, across the four
 * workload cases (early / late / depthwise / pointwise), compared with
 * BitWave's dynamic selection. Each mapping policy is one analytical
 * scenario over a custom 4-layer case workload, evaluated as a
 * ScenarioRunner batch.
 */
#include "bench_util.hpp"
#include "dataflow/su.hpp"
#include "nn/synthesis.hpp"

using namespace bitwave;

namespace {

/// The four Fig. 9 case layers with small synthesized weights.
std::shared_ptr<const Workload>
case_workload()
{
    auto w = std::make_shared<Workload>();
    w->name = "fig9-cases";
    w->metric_name = "n/a";
    Rng rng(9);
    const LayerDesc cases[] = {
        make_conv("early (ResNet18 conv1)", 64, 3, 112, 112, 7, 7, 2),
        make_conv("late (ResNet18 last)", 512, 512, 7, 7, 3, 3),
        make_depthwise("Dwcv (MobileNetV2)", 96, 56, 56, 3),
        make_pointwise("Pwcv (MobileNetV2)", 96, 16, 112, 112),
    };
    for (const auto &desc : cases) {
        WorkloadLayer layer;
        layer.desc = desc;
        layer.weights = synthesize_weights(desc, WeightProfile{}, rng);
        layer.activation_sparsity = 0.4;
        layer.weights_hash = layer.compute_weights_hash();
        w->layers.push_back(std::move(layer));
    }
    return w;
}

}  // namespace

int
main()
{
    bench::banner("Fig. 9", "PE utilization of fixed SUs vs layer shapes");
    bench::JsonReport json("fig09_utilization");

    const auto cases = case_workload();

    // One scenario per mapping policy: the fixed single-SU baselines on
    // both array geometries, then BitWave's dynamic selection.
    struct Policy { std::string label; AcceleratorConfig config; };
    std::vector<Policy> policies;
    for (std::int64_t lanes : {4096LL, 512LL}) {
        for (const auto &su : fixed_su_baselines(lanes)) {
            AcceleratorConfig cfg;
            cfg.name = strprintf("%s(%lld)", su.name.c_str(),
                                 static_cast<long long>(lanes));
            cfg.style = lanes == 4096 ? ComputeStyle::kBitSerial
                                      : ComputeStyle::kBitParallel;
            cfg.dataflows = {su};
            policies.push_back({cfg.name, std::move(cfg)});
        }
    }
    {
        AcceleratorConfig dynamic = make_bitwave(BitWaveVariant::kDynamicDf);
        dynamic.name = "BitWave dynamic";
        policies.push_back({dynamic.name, std::move(dynamic)});
    }

    std::vector<eval::Scenario> scenarios;
    for (const auto &policy : policies) {
        eval::Scenario s;
        s.custom_workload = cases;
        s.accel = policy.config;
        scenarios.push_back(std::move(s));
    }
    eval::RunnerReport report;
    const auto results = eval::ScenarioRunner().run(scenarios, &report);

    for (std::int64_t lanes : {4096LL, 512LL}) {
        std::printf("%lld-lane array (%s):\n", static_cast<long long>(lanes),
                    lanes == 4096 ? "1b x 8b bit-serial"
                                  : "8b x 8b bit-parallel");
        Table t({"layer case", "XY", "CK", "XFx", "BitWave dynamic"});
        const std::size_t base = lanes == 4096 ? 0 : 3;
        for (std::size_t l = 0; l < cases->layers.size(); ++l) {
            std::vector<std::string> row{cases->layers[l].desc.name};
            for (std::size_t p = base; p < base + 3; ++p) {
                row.push_back(
                    fmt_percent(results[p].layers[l].utilization));
            }
            const auto &dyn = results.back().layers[l];
            row.push_back(strprintf("%s (%s)",
                                    fmt_percent(dyn.utilization).c_str(),
                                    dyn.su_name.c_str()));
            t.add_row(std::move(row));
        }
        std::printf("%s\n", t.render().c_str());
    }
    for (std::size_t p = 0; p < policies.size(); ++p) {
        for (std::size_t l = 0; l < cases->layers.size(); ++l) {
            json.add_row({{"policy", policies[p].label},
                          {"layer", cases->layers[l].desc.name},
                          {"su", results[p].layers[l].su_name},
                          {"utilization",
                           results[p].layers[l].utilization}});
        }
    }
    std::printf("expected shape: no fixed SU exceeds ~80%% on all four "
                "cases; the larger array suffers more; dynamic selection "
                "recovers utilization everywhere.\n");
    bench::print_runner_report(report);
    return 0;
}
