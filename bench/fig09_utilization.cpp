/**
 * @file
 * Fig. 9 — PE utilization of fixed SU mappings (XY / CK / XFx) on the
 * 4096-lane 1bx8b array and the 512-lane 8bx8b array, across the four
 * workload cases (early / late / depthwise / pointwise), compared with
 * BitWave's dynamic selection.
 */
#include "bench_util.hpp"
#include "dataflow/su.hpp"

using namespace bitwave;

int
main()
{
    bench::banner("Fig. 9", "PE utilization of fixed SUs vs layer shapes");
    const LayerDesc cases[] = {
        make_conv("early (ResNet18 conv1)", 64, 3, 112, 112, 7, 7, 2),
        make_conv("late (ResNet18 last)", 512, 512, 7, 7, 3, 3),
        make_depthwise("Dwcv (MobileNetV2)", 96, 56, 56, 3),
        make_pointwise("Pwcv (MobileNetV2)", 96, 16, 112, 112),
    };

    for (std::int64_t lanes : {4096LL, 512LL}) {
        std::printf("%lld-lane array (%s):\n", static_cast<long long>(lanes),
                    lanes == 4096 ? "1b x 8b bit-serial"
                                  : "8b x 8b bit-parallel");
        Table t({"layer case", "XY", "CK", "XFx", "BitWave dynamic"});
        for (const auto &layer : cases) {
            std::vector<std::string> row{layer.name};
            for (const auto &su : fixed_su_baselines(lanes)) {
                row.push_back(fmt_percent(spatial_utilization(layer, su)));
            }
            const auto &best = select_su(layer, bitwave_sus());
            row.push_back(strprintf(
                "%s (%s)",
                fmt_percent(spatial_utilization(layer, best)).c_str(),
                best.name.c_str()));
            t.add_row(std::move(row));
        }
        std::printf("%s\n", t.render().c_str());
    }
    std::printf("expected shape: no fixed SU exceeds ~80%% on all four "
                "cases; the larger array suffers more; dynamic selection "
                "recovers utilization everywhere.\n");
    return 0;
}
