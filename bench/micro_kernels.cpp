/**
 * @file
 * Micro-kernel bench — scalar vs packed bit-plane kernels on a
 * BERT-scale tensor (3072 x 768 ffn projection, ~2.4M weights).
 *
 * Times the element-at-a-time oracles against the word-parallel kernels
 * that replaced them on every hot path (bit-column statistics, BCS
 * measure/compress, mapping cycle statistics, sparsity, Bit-Flip), and
 * verifies bit-identical results in the same run, and closes with a
 * `runner_scaling` row timing the work-stealing runner core serial vs
 * parallel on a warm batch plus `fault_branch` / `metrics_record` rows
 * measuring the cost of a disarmed fault point and a disarmed gated
 * histogram record (the robustness and observability layers'
 * zero-overhead claims). Emits BENCH_micro_kernels.json; CI validates
 * the JSON and
 * the equivalence flags like the other bench reports.
 */
#include <algorithm>
#include <chrono>
#include <functional>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "bitflip/bitflip.hpp"
#include "common/fault.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "compress/bcs.hpp"
#include "compress/csr.hpp"
#include "compress/zre.hpp"
#include "dataflow/mapping.hpp"
#include "nn/layer.hpp"
#include "nn/synthesis.hpp"
#include "sparsity/bitcolumn.hpp"
#include "sparsity/stats.hpp"
#include "tensor/bitplane.hpp"

using namespace bitwave;

namespace {

/// Best-of-N wall time of @p fn in milliseconds.
double
time_ms(const std::function<void()> &fn, int repeats = 3)
{
    double best = 1e300;
    for (int r = 0; r < repeats; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const double ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
        best = std::min(best, ms);
    }
    return best;
}

void
report(bench::JsonReport &json, Table &table, const std::string &kernel,
       double scalar_ms, double packed_ms, bool identical)
{
    const double speedup = packed_ms > 0.0 ? scalar_ms / packed_ms : 0.0;
    table.add_row({kernel, strprintf("%.2f", scalar_ms),
                   strprintf("%.2f", packed_ms),
                   strprintf("%.2fx", speedup), identical ? "yes" : "NO"});
    json.add_row({{"kernel", kernel},
                  {"scalar_ms", scalar_ms},
                  {"packed_ms", packed_ms},
                  {"speedup", speedup},
                  {"identical", identical}});
}

bool
same_stats(const BitColumnStats &a, const BitColumnStats &b)
{
    if (a.groups != b.groups || a.columns != b.columns ||
        a.zero_columns != b.zero_columns) {
        return false;
    }
    for (int z = 0; z <= 8; ++z) {
        if (a.zero_column_hist[z] != b.zero_column_hist[z]) {
            return false;
        }
    }
    return true;
}

}  // namespace

int
main()
{
    bench::banner("Micro-kernels",
                  "scalar vs packed bit-plane kernels, BERT-scale tensor");
    bench::JsonReport json("micro_kernels");

    // BERT ffn_in-scale tensor with a transformer-ish profile.
    const LayerDesc desc = make_linear("ffn_in", 3072, 768);
    WeightProfile profile;
    profile.distribution = WeightDistribution::kGaussian;
    profile.scale = 24.0;
    profile.zero_probability = 0.005;
    profile.kernel_gain_sigma = 0.3;
    Rng rng(0xBEEF);
    const Int8Tensor w = synthesize_weights(desc, profile, rng);

    const int group = 16;
    const auto repr = Representation::kSignMagnitude;
    json.param("tensor", desc.to_string());
    json.param("elements", w.numel());
    json.param("group_size", group);
    json.param("repr", representation_name(repr));

    Table table({"kernel", "scalar ms", "packed ms", "speedup",
                 "identical"});

    // Pack once; the packed kernels below reuse the planes, which is how
    // every production path consumes them (per-tensor content cache).
    BitPlanes planes;
    const double pack_ms =
        time_ms([&] { planes = pack_bitplanes(w, repr); });
    json.add_row({{"kernel", "pack_bitplanes"},
                  {"scalar_ms", 0.0},
                  {"packed_ms", pack_ms},
                  {"speedup", 0.0},
                  {"identical", true}});
    table.add_row({"pack_bitplanes (one-time)", "-",
                   strprintf("%.2f", pack_ms), "-", "yes"});

    {  // Bit-column statistics.
        BitColumnStats s, p;
        const double scalar_ms = time_ms(
            [&] { s = analyze_bit_columns_scalar(w, group, repr); });
        const double packed_ms =
            time_ms([&] { p = analyze_bit_columns(planes, group); });
        report(json, table, "analyze_bit_columns", scalar_ms, packed_ms,
               same_stats(s, p));
    }

    {  // BCS size accounting.
        BcsSizeInfo s, p;
        const double scalar_ms =
            time_ms([&] { s = bcs_measure_scalar(w, group, repr); });
        const double packed_ms =
            time_ms([&] { p = bcs_measure(planes, group); });
        report(json, table, "bcs_measure", scalar_ms, packed_ms,
               s.groups == p.groups &&
                   s.nonzero_columns == p.nonzero_columns);
    }

    {  // BCS stream materialization.
        BcsCompressed s, p;
        const double scalar_ms =
            time_ms([&] { s = bcs_compress_scalar(w, group, repr); });
        const double packed_ms = time_ms(
            [&] { p = bcs_compress(planes, w.shape(), group); });
        bool identical = s.groups.size() == p.groups.size();
        for (std::size_t i = 0; identical && i < s.groups.size(); ++i) {
            identical = s.groups[i].index == p.groups[i].index &&
                s.groups[i].columns == p.groups[i].columns;
        }
        report(json, table, "bcs_compress", scalar_ms, packed_ms,
               identical);
    }

    {  // Mapping cycle statistics (the analytical model's inner loop).
        ColumnCycleStats s, p;
        const double scalar_ms = time_ms(
            [&] { s = column_cycle_stats_scalar(w, desc, group, 32, repr); });
        const double packed_ms = time_ms(
            [&] { p = column_cycle_stats(planes, desc, group, 32); });
        report(json, table, "column_cycle_stats", scalar_ms, packed_ms,
               s.groups == p.groups &&
                   s.mean_cycles_per_group == p.mean_cycles_per_group &&
                   s.sync_cycles_per_group == p.sync_cycles_per_group);
    }

    {  // Sparsity statistics (needs both representations).
        BitPlanes p2c;
        const double pack2c_ms =
            time_ms([&] {
                p2c = pack_bitplanes(w, Representation::kTwosComplement);
            });
        SparsityStats s, p;
        const double scalar_ms = time_ms([&] { s = compute_sparsity(w); });
        const double packed_ms =
            time_ms([&] { p = compute_sparsity(p2c, planes); });
        (void)pack2c_ms;
        report(json, table, "compute_sparsity", scalar_ms, packed_ms,
               s.zero_words == p.zero_words &&
                   s.zero_bits_2c == p.zero_bits_2c &&
                   s.zero_bits_sm == p.zero_bits_sm);
    }

    {  // ZRE encoding (SWAR non-zero mask scan vs per-element walk).
        ZreCompressed s, p;
        const double scalar_ms =
            time_ms([&] { s = zre_compress_scalar(w); });
        const double packed_ms = time_ms([&] { p = zre_compress(w); });
        bool identical = s.entries.size() == p.entries.size();
        for (std::size_t i = 0; identical && i < s.entries.size(); ++i) {
            identical = s.entries[i].zero_run == p.entries[i].zero_run &&
                s.entries[i].value == p.entries[i].value;
        }
        report(json, table, "zre_compress", scalar_ms, packed_ms,
               identical);
    }

    {  // CSR encoding (bit-plane non-zero mask scan vs element walk).
        CsrCompressed s, p;
        const double scalar_ms =
            time_ms([&] { s = csr_compress_scalar(w, w.dim(0)); });
        // Production path (eval engine) reuses already-packed 2C
        // planes, so the pack is not on the timed path here either.
        const BitPlanes p2c =
            pack_bitplanes(w, Representation::kTwosComplement);
        const double packed_ms =
            time_ms([&] { p = csr_compress(p2c, w, w.dim(0)); });
        report(json, table, "csr_compress", scalar_ms, packed_ms,
               s.values == p.values && s.col_indices == p.col_indices &&
                   s.row_ptr == p.row_ptr);
    }

    {  // Bit-Flip (profile-scored greedy vs per-element scoring).
        const int target = 5;
        Int8Tensor fast = w, scalar = w;
        const auto flip_with =
            [&](Int8Tensor &t,
                GroupFlipResult (*kernel)(std::span<std::int8_t>, int)) {
                const std::int64_t n = t.numel();
                for (std::int64_t start = 0; start < n; start += group) {
                    const std::int64_t len =
                        std::min<std::int64_t>(group, n - start);
                    kernel({t.data() + start,
                            static_cast<std::size_t>(len)},
                           target);
                }
            };
        const double scalar_ms = time_ms(
            [&] {
                scalar = w;
                flip_with(scalar, bitflip_group_scalar);
            },
            1);
        const double packed_ms = time_ms(
            [&] {
                fast = w;
                flip_with(fast, bitflip_group);
            },
            1);
        report(json, table, "bitflip_group", scalar_ms, packed_ms,
               fast == scalar);
    }

    // ------------------------------------------------ runner scaling ---
    // Not a bit-plane kernel: the work-stealing runner core, timed as
    // 1-thread vs N-thread wall on a small warm analytical batch so the
    // kernel report also tracks the scheduler. "scalar" is the serial
    // run, "packed" the parallel one; `identical` asserts the N-thread
    // results match the serial ones bit for bit.
    {
        std::vector<eval::Scenario> batch;
        for (const WorkloadId id :
             {WorkloadId::kMobileNetV2, WorkloadId::kCnnLstm}) {
            eval::Scenario s;
            s.engine = eval::EngineKind::kAnalytical;
            s.workload = id;
            batch.push_back(std::move(s));
        }
        const auto run_with = [&](int threads) {
            eval::RunnerOptions options;
            options.threads = threads;
            options.shard_layers = 4;
            return eval::ScenarioRunner(options).run(batch);
        };
        const auto golden = run_with(1);  // warm every cache, untimed
        const int threads = static_cast<int>(std::max(
            2u, std::thread::hardware_concurrency()));
        std::vector<eval::ScenarioResult> serial, parallel;
        const double serial_ms = time_ms([&] { serial = run_with(1); });
        const double parallel_ms =
            time_ms([&] { parallel = run_with(threads); });
        bool identical = serial.size() == golden.size() &&
                         parallel.size() == golden.size();
        for (std::size_t i = 0; identical && i < golden.size(); ++i) {
            identical = serial[i].total_cycles == golden[i].total_cycles &&
                        parallel[i].total_cycles ==
                            golden[i].total_cycles &&
                        serial[i].energy.total_pj ==
                            golden[i].energy.total_pj &&
                        parallel[i].energy.total_pj ==
                            golden[i].energy.total_pj;
        }
        report(json, table, "runner_scaling", serial_ms, parallel_ms,
               identical);
    }

    // ------------------------------------------------- fault branch ---
    // Cost of a *disarmed* fault point — the robustness acceptance
    // criterion is that carrying the fault model adds no measurable
    // overhead in production. "scalar" is a bare accumulation loop,
    // "packed" the same loop with a BITWAVE_FAULT_POINT in the body
    // (one relaxed atomic load + never-taken branch per iteration).
    {
        fault::reset();  // make sure nothing is armed
        constexpr std::size_t kIters = 50'000'000;
        volatile std::uint64_t guard = 0;
        std::uint64_t acc = 0;
        const double bare_ms = time_ms(
            [&] {
                std::uint64_t sum = 0;
                for (std::size_t i = 0; i < kIters; ++i) {
                    sum += i ^ guard;
                }
                acc ^= sum;
            },
            1);
        const double pointed_ms = time_ms(
            [&] {
                std::uint64_t sum = 0;
                for (std::size_t i = 0; i < kIters; ++i) {
                    if (BITWAVE_FAULT_POINT("micro.bench")) {
                        sum += 1;  // never taken while disarmed
                    }
                    sum += i ^ guard;
                }
                acc ^= sum;
            },
            1);
        guard = acc;
        report(json, table, "fault_branch", bare_ms, pointed_ms, true);
        json.param("fault_branch_ns_per_check",
                   (pointed_ms - bare_ms) * 1e6 /
                       static_cast<double>(kIters));
    }

    // ----------------------------------------------- metrics record ---
    // Cost of a *disarmed* gated-histogram record — the observability
    // layer's zero-overhead claim mirrors the fault-branch one: every
    // hot path carries its histogram, and while metrics are off the
    // record is one relaxed load + never-taken branch. "scalar" is the
    // bare loop, "packed" the same loop with a record() in the body.
    {
        metrics::set_enabled(false);  // defeat any BITWAVE_METRICS arm
        metrics::Histogram &hist =
            metrics::histogram("bench.metrics_record");
        const std::uint64_t before = hist.snapshot().count;
        constexpr std::size_t kIters = 50'000'000;
        volatile std::uint64_t guard = 0;
        std::uint64_t acc = 0;
        const double bare_ms = time_ms(
            [&] {
                std::uint64_t sum = 0;
                for (std::size_t i = 0; i < kIters; ++i) {
                    sum += i ^ guard;
                }
                acc ^= sum;
            },
            1);
        const double pointed_ms = time_ms(
            [&] {
                std::uint64_t sum = 0;
                for (std::size_t i = 0; i < kIters; ++i) {
                    hist.record(i & 0xFF);  // no-op while disarmed
                    sum += i ^ guard;
                }
                acc ^= sum;
            },
            1);
        guard = acc;
        // Disarmed records must not land; one armed record must.
        bool ok = hist.snapshot().count == before;
        metrics::set_enabled(true);
        hist.record(42);
        ok = ok && hist.snapshot().count == before + 1;
        metrics::set_enabled(false);
        report(json, table, "metrics_record", bare_ms, pointed_ms, ok);
        json.param("metrics_disarmed_ns_per_record",
                   (pointed_ms - bare_ms) * 1e6 /
                       static_cast<double>(kIters));
    }

    std::printf("%s", table.render().c_str());
    std::printf("\nPacked kernels read 64 weights per word; the pack is "
                "one transpose per tensor, cached by content hash in "
                "production paths.\n");
    return 0;
}
