/**
 * @file
 * Fig. 5 — compression ratio of ZRE, CSR, and BCS for the last four conv
 * layers of ResNet18, with BCS swept over group sizes 1..64; each codec
 * reported with ("real") and without ("ideal") index overhead. One
 * kStats+compression scenario per group size (restricted to the four
 * layers), run as a parallel ScenarioRunner batch; codec bit counts
 * aggregate across the layers.
 */
#include "bench_util.hpp"

using namespace bitwave;

namespace {

/// Sum a codec's (real, ideal) bits over the scenario's layers.
struct CodecBits
{
    double real = 0.0;
    double ideal = 0.0;
    std::int64_t original = 0;

    void add(std::int64_t real_bits, std::int64_t ideal_bits,
             std::int64_t original_bits)
    {
        real += static_cast<double>(real_bits);
        ideal += static_cast<double>(ideal_bits);
        original += original_bits;
    }
    double real_cr() const
    {
        return static_cast<double>(original) / real;
    }
    double ideal_cr() const
    {
        return static_cast<double>(original) / ideal;
    }
};

}  // namespace

int
main()
{
    bench::banner("Fig. 5",
                  "CR of ZRE / CSR / BCS(G) on ResNet18's last 4 conv "
                  "layers (>= 50% of weights)");
    bench::JsonReport json("fig05_compression");

    const std::vector<std::string> layers = {"l4.0.conv1", "l4.0.conv2",
                                             "l4.1.conv1", "l4.1.conv2"};
    const int group_sizes[] = {1, 2, 4, 8, 16, 32, 64};
    std::vector<eval::Scenario> scenarios;
    for (int g : group_sizes) {
        eval::Scenario s;
        s.engine = eval::EngineKind::kStats;
        s.workload = WorkloadId::kResNet18;
        s.layer_filter = layers;
        s.stats.group_size = g;
        s.stats.bcs = true;
        // ZRE/CSR are group-size independent; measure them once.
        s.stats.reference_codecs = scenarios.empty();
        scenarios.push_back(std::move(s));
    }
    eval::RunnerReport report;
    const auto results = eval::ScenarioRunner().run(scenarios, &report);

    Table t({"codec", "real CR", "ideal CR"});
    // ZRE / CSR are group-size independent: read them off the first
    // scenario.
    CodecBits zre, csr;
    for (const auto &l : results[0].layers) {
        zre.add(l.stats->zre_bits, l.stats->zre_ideal_bits,
                l.stats->weight_bits);
        csr.add(l.stats->csr_bits, l.stats->csr_ideal_bits,
                l.stats->weight_bits);
    }
    t.add_row({"ZRE", fmt_ratio(zre.real_cr()), fmt_ratio(zre.ideal_cr())});
    t.add_row({"CSR", fmt_ratio(csr.real_cr()), fmt_ratio(csr.ideal_cr())});
    json.add_row({{"codec", "ZRE"}, {"real_cr", zre.real_cr()},
                  {"ideal_cr", zre.ideal_cr()}});
    json.add_row({{"codec", "CSR"}, {"real_cr", csr.real_cr()},
                  {"ideal_cr", csr.ideal_cr()}});
    for (std::size_t i = 0; i < results.size(); ++i) {
        CodecBits bcs;
        for (const auto &l : results[i].layers) {
            bcs.add(l.stats->bcs_sm_bits, l.stats->bcs_sm_ideal_bits,
                    l.stats->weight_bits);
        }
        t.add_row({strprintf("BCS G=%d", group_sizes[i]),
                   fmt_ratio(bcs.real_cr()), fmt_ratio(bcs.ideal_cr())});
        json.add_row({{"codec", strprintf("BCS G=%d", group_sizes[i])},
                      {"group_size", group_sizes[i]},
                      {"real_cr", bcs.real_cr()},
                      {"ideal_cr", bcs.ideal_cr()}});
    }
    std::printf("%s", t.render().c_str());
    std::printf("\nexpected shape: ideal CR falls as G grows; real CR "
                "peaks at moderate G (index overhead dominates G = 1); "
                "BCS beats ZRE/CSR at this low value sparsity.\n");
    bench::print_runner_report(report);
    return 0;
}
