/**
 * @file
 * Fig. 5 — compression ratio of ZRE, CSR, and BCS for the last four conv
 * layers of ResNet18, with BCS swept over group sizes 1..64; each codec
 * reported with ("real") and without ("ideal") index overhead.
 */
#include "bench_util.hpp"
#include "compress/bcs.hpp"
#include "compress/csr.hpp"
#include "compress/zre.hpp"

using namespace bitwave;

int
main()
{
    bench::banner("Fig. 5",
                  "CR of ZRE / CSR / BCS(G) on ResNet18's last 4 conv "
                  "layers (>= 50% of weights)");
    const auto &w = get_workload(WorkloadId::kResNet18);

    // Concatenate the four layers' weights (the figure aggregates them).
    std::vector<std::int8_t> data;
    std::int64_t rows = 0;
    for (const char *name :
         {"l4.0.conv1", "l4.0.conv2", "l4.1.conv1", "l4.1.conv2"}) {
        const auto &t = w.layers[w.layer_index(name)].weights;
        data.insert(data.end(), t.data(), t.data() + t.numel());
        rows += t.dim(0);
    }
    const auto element_count = static_cast<std::int64_t>(data.size());
    const Int8Tensor weights({element_count}, std::move(data));

    Table t({"codec", "real CR", "ideal CR"});
    const auto zre = zre_compress(weights);
    t.add_row({"ZRE", fmt_ratio(zre.compression_ratio()),
               fmt_ratio(zre.ideal_compression_ratio())});
    const auto csr = csr_compress(weights, rows);
    t.add_row({"CSR", fmt_ratio(csr.compression_ratio()),
               fmt_ratio(csr.ideal_compression_ratio())});
    for (int g : {1, 2, 4, 8, 16, 32, 64}) {
        const auto bcs =
            bcs_compress(weights, g, Representation::kSignMagnitude);
        t.add_row({strprintf("BCS G=%d", g),
                   fmt_ratio(bcs.compression_ratio()),
                   fmt_ratio(bcs.ideal_compression_ratio())});
    }
    std::printf("%s", t.render().c_str());
    std::printf("\nexpected shape: ideal CR falls as G grows; real CR "
                "peaks at moderate G (index overhead dominates G = 1); "
                "BCS beats ZRE/CSR at this low value sparsity.\n");
    return 0;
}
