/**
 * @file
 * Fig. 15 — total inference energy of every accelerator, normalized to
 * BitWave+DF+SM+BF (lower is better).
 */
#include "bench_util.hpp"
#include "model/performance.hpp"

using namespace bitwave;

int
main()
{
    bench::banner("Fig. 15",
                  "energy normalized to BitWave+DF+SM+BF (lower=better)");
    Table t({"network", "SCNN", "Stripes", "Pragmatic", "Bitlet", "HUAA",
             "BitWave"});
    for (auto id : kAllWorkloads) {
        const auto &w = get_workload(id);
        const auto flipped = bench::flip_heavy_layers(w, 0.8, 16, 5);
        const auto bw =
            AcceleratorModel(make_bitwave(BitWaveVariant::kDfSmBf))
                .model_workload(w, &flipped);
        const double energies[] = {
            AcceleratorModel(make_scnn()).model_workload(w).energy.total_pj,
            AcceleratorModel(make_stripes())
                .model_workload(w).energy.total_pj,
            AcceleratorModel(make_pragmatic())
                .model_workload(w).energy.total_pj,
            AcceleratorModel(make_bitlet())
                .model_workload(w).energy.total_pj,
            AcceleratorModel(make_huaa()).model_workload(w).energy.total_pj,
            bw.energy.total_pj,
        };
        std::vector<std::string> row{w.name};
        for (double e : energies) {
            row.push_back(fmt_ratio(e / bw.energy.total_pj));
        }
        t.add_row(std::move(row));
    }
    std::printf("%s", t.render().c_str());
    std::printf("\npaper anchors: SCNN up to 13.23x on Bert-Base; "
                "MobileNetV2 baselines 4.09-5.04x; HUAA 2.41x average. "
                "Expected shape: BitWave lowest, SCNN worst on "
                "weight-heavy / low-sparsity nets.\n");
    return 0;
}
