/**
 * @file
 * Fig. 15 — total inference energy of every accelerator, normalized to
 * BitWave+DF+SM+BF (lower is better). The accelerator x workload grid
 * runs as one parallel ScenarioRunner batch.
 */
#include <algorithm>

#include "bench_util.hpp"

using namespace bitwave;

int
main()
{
    bench::banner("Fig. 15",
                  "energy normalized to BitWave+DF+SM+BF (lower=better)");
    bench::JsonReport json("fig15_energy");

    const auto scenarios = bench::paper_grid();
    eval::RunnerReport report;
    const auto results = eval::ScenarioRunner().run(scenarios, &report);

    // Paper anchors (the new Fig15 test enforces them at +-20 %): SCNN
    // 13.23x on Bert-Base, every MobileNetV2 baseline inside
    // [4.09, 5.04], HUAA 2.41x on average. Anchored cells carry
    // machine-readable `anchor` / `deviation` keys (banded anchors
    // clamp to the nearest edge, so deviation is 0 inside the band);
    // CI asserts every emitted deviation stays within +-20 %.
    constexpr double kScnnBertAnchor = 13.23;
    constexpr double kMobileBandLo = 4.09, kMobileBandHi = 5.04;
    constexpr double kHuaaAvgAnchor = 2.41;

    const std::size_t per_workload = bench::kPaperGridPerWorkload;
    Table t({"network", "SCNN", "Stripes", "Pragmatic", "Bitlet", "HUAA",
             "BitWave"});
    double huaa_ratio_sum = 0.0;
    std::size_t workloads = 0;
    for (std::size_t w = 0; w * per_workload < results.size(); ++w) {
        const auto *r = &results[w * per_workload];
        const double bw_energy = r[per_workload - 1].energy.total_pj;
        std::vector<std::string> row{r[0].workload};
        ++workloads;
        for (std::size_t a = 0; a < per_workload; ++a) {
            const double ratio = r[a].energy.total_pj / bw_energy;
            row.push_back(fmt_ratio(ratio));
            bench::JsonObject extra{{"energy_vs_bitwave", ratio}};
            const bool is_baseline = a < per_workload - 1;
            double anchor = 0.0;
            if (r[a].workload == "Bert-Base" &&
                r[a].accelerator == "SCNN") {
                anchor = kScnnBertAnchor;
            } else if (r[a].workload == "MobileNetV2" && is_baseline) {
                anchor = std::clamp(ratio, kMobileBandLo, kMobileBandHi);
            }
            if (anchor > 0.0) {
                bench::add_anchor(extra, ratio, anchor);
            }
            if (r[a].accelerator == "HUAA") {
                huaa_ratio_sum += ratio;
            }
            json.add_result(r[a], std::move(extra));
        }
        t.add_row(std::move(row));
    }
    const double huaa_avg =
        huaa_ratio_sum / static_cast<double>(workloads);
    bench::add_anchor_param(json, "huaa_avg_energy_vs_bitwave", huaa_avg,
                            kHuaaAvgAnchor);
    std::printf("%s", t.render().c_str());
    std::printf("\npaper anchors: SCNN up to 13.23x on Bert-Base; "
                "MobileNetV2 baselines 4.09-5.04x; HUAA 2.41x average "
                "(reproduced: %.2fx). Expected shape: BitWave lowest, "
                "SCNN worst on weight-heavy / low-sparsity nets.\n",
                huaa_avg);
    bench::print_runner_report(report);
    return 0;
}
