/**
 * @file
 * Fig. 15 — total inference energy of every accelerator, normalized to
 * BitWave+DF+SM+BF (lower is better). The accelerator x workload grid
 * runs as one parallel ScenarioRunner batch.
 */
#include "bench_util.hpp"

using namespace bitwave;

int
main()
{
    bench::banner("Fig. 15",
                  "energy normalized to BitWave+DF+SM+BF (lower=better)");
    bench::JsonReport json("fig15_energy");

    const AcceleratorConfig baselines[] = {make_scnn(), make_stripes(),
                                           make_pragmatic(), make_bitlet(),
                                           make_huaa()};
    std::vector<eval::Scenario> scenarios;
    for (auto id : kAllWorkloads) {
        for (const auto &cfg : baselines) {
            eval::Scenario s;
            s.accel = cfg;
            s.workload = id;
            scenarios.push_back(std::move(s));
        }
        eval::Scenario bw;
        bw.accel = make_bitwave(BitWaveVariant::kDfSmBf);
        bw.workload = id;
        bw.bitflip.mode = eval::BitflipSpec::Mode::kHeavyLayers;
        bw.bitflip.weight_share = 0.8;
        bw.bitflip.group_size = 16;
        bw.bitflip.zero_columns = 5;
        scenarios.push_back(std::move(bw));
    }
    eval::RunnerReport report;
    const auto results = eval::ScenarioRunner().run(scenarios, &report);

    const std::size_t per_workload = std::size(baselines) + 1;
    Table t({"network", "SCNN", "Stripes", "Pragmatic", "Bitlet", "HUAA",
             "BitWave"});
    for (std::size_t w = 0; w * per_workload < results.size(); ++w) {
        const auto *r = &results[w * per_workload];
        const double bw_energy = r[per_workload - 1].energy.total_pj;
        std::vector<std::string> row{r[0].workload};
        for (std::size_t a = 0; a < per_workload; ++a) {
            const double ratio = r[a].energy.total_pj / bw_energy;
            row.push_back(fmt_ratio(ratio));
            json.add_result(r[a], {{"energy_vs_bitwave", ratio}});
        }
        t.add_row(std::move(row));
    }
    std::printf("%s", t.render().c_str());
    std::printf("\npaper anchors: SCNN up to 13.23x on Bert-Base; "
                "MobileNetV2 baselines 4.09-5.04x; HUAA 2.41x average. "
                "Expected shape: BitWave lowest, SCNN worst on "
                "weight-heavy / low-sparsity nets.\n");
    bench::print_runner_report(report);
    return 0;
}
