/**
 * @file
 * Section V-B validation — the paper cross-checks its analytical model
 * against the BitWave RTL (< 6 % deviation). This bench reproduces that
 * cross-check between our two independent implementations: the
 * cycle-level simulator and the analytical model, per layer.
 */
#include "bench_util.hpp"
#include "model/performance.hpp"
#include "sim/npu.hpp"

using namespace bitwave;

int
main()
{
    bench::banner("Validation",
                  "cycle-level simulator vs analytical model "
                  "(paper: < 6% RTL deviation)");
    BitWaveNpu npu;
    AcceleratorModel model(make_bitwave(BitWaveVariant::kDfSm));

    Table t({"workload/layer", "SU", "sim cycles", "model cycles",
             "deviation"});
    double worst = 0.0;
    struct Probe { WorkloadId id; const char *layer; };
    const Probe probes[] = {
        {WorkloadId::kCnnLstm, "fc_in"},
        {WorkloadId::kCnnLstm, "LSTM.0"},
        {WorkloadId::kCnnLstm, "LSTM.1"},
        {WorkloadId::kCnnLstm, "fc_out"},
        {WorkloadId::kResNet18, "l4.0.down"},
        {WorkloadId::kResNet18, "fc"},
        {WorkloadId::kBertBase, "layer.0.q"},
        {WorkloadId::kMobileNetV2, "L.50.pw_proj"},
    };
    for (const auto &probe : probes) {
        const auto &w = get_workload(probe.id);
        const auto &layer = w.layers[w.layer_index(probe.layer)];
        const auto sim =
            npu.run_layer(layer, nullptr, nullptr, /*compute_output=*/false);
        const auto mod = model.model_layer(layer);
        const double dev =
            sim.cycles_decoupled / mod.compute_cycles - 1.0;
        worst = std::max(worst, std::abs(dev));
        t.add_row({strprintf("%s/%s", w.name.c_str(), probe.layer),
                   sim.su_name, fmt_double(sim.cycles_decoupled, 0),
                   fmt_double(mod.compute_cycles, 0),
                   fmt_percent(dev, 2)});
    }
    std::printf("%s", t.render().c_str());
    std::printf("\nworst deviation: %.2f%% (target < ~10%% between "
                "independent implementations)\n", worst * 100.0);
    return worst < 0.15 ? 0 : 1;
}
