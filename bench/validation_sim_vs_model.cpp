/**
 * @file
 * Section V-B validation — the paper cross-checks its analytical model
 * against the BitWave RTL (< 6 % deviation). This bench reproduces that
 * cross-check between our two independent implementations — the
 * cycle-level simulator and the analytical model — by evaluating each
 * probe layer under BOTH engines of the shared evaluation core, as one
 * parallel ScenarioRunner batch.
 */
#include <cmath>

#include "bench_util.hpp"
#include "common/logging.hpp"
#include "eval/runner.hpp"

using namespace bitwave;

int
main()
{
    bench::banner("Validation",
                  "cycle-level simulator vs analytical model "
                  "(paper: < 6% RTL deviation)");
    bench::JsonReport json("validation_sim_vs_model");

    struct Probe { WorkloadId id; const char *layer; };
    const Probe probes[] = {
        {WorkloadId::kCnnLstm, "fc_in"},
        {WorkloadId::kCnnLstm, "LSTM.0"},
        {WorkloadId::kCnnLstm, "LSTM.1"},
        {WorkloadId::kCnnLstm, "fc_out"},
        {WorkloadId::kResNet18, "l4.0.down"},
        {WorkloadId::kResNet18, "fc"},
        {WorkloadId::kBertBase, "layer.0.q"},
        {WorkloadId::kMobileNetV2, "L.50.pw_proj"},
    };

    // Per probe: one cycle-sim scenario and one analytical scenario,
    // both restricted to the probed layer.
    std::vector<eval::Scenario> scenarios;
    for (const auto &probe : probes) {
        eval::Scenario sim;
        sim.engine = eval::EngineKind::kCycleSim;
        sim.workload = probe.id;
        sim.layer_filter = {probe.layer};
        scenarios.push_back(std::move(sim));

        eval::Scenario model;
        model.engine = eval::EngineKind::kAnalytical;
        model.accel = make_bitwave(BitWaveVariant::kDfSm);
        model.workload = probe.id;
        model.layer_filter = {probe.layer};
        scenarios.push_back(std::move(model));
    }

    eval::RunnerReport report;
    const auto results = eval::ScenarioRunner().run(scenarios, &report);

    Table t({"workload/layer", "SU", "sim cycles", "model cycles",
             "deviation", "sim total", "model total", "total dev"});
    double worst = 0.0;
    double worst_total = 0.0;
    for (std::size_t p = 0; p < std::size(probes); ++p) {
        const eval::LayerEval &sim = results[2 * p].layers.front();
        const eval::LayerEval &mod = results[2 * p + 1].layers.front();
        const double dev = sim.compute_cycles / mod.compute_cycles - 1.0;
        // With first/last-layer activation DRAM traffic wired through
        // the simulator, total_cycles (Eq. 5) must agree too — not just
        // the compute component.
        const double total_dev = sim.total_cycles / mod.total_cycles - 1.0;
        worst = std::max(worst, std::abs(dev));
        worst_total = std::max(worst_total, std::abs(total_dev));
        t.add_row({strprintf("%s/%s", results[2 * p].workload.c_str(),
                             probes[p].layer),
                   sim.su_name, fmt_double(sim.compute_cycles, 0),
                   fmt_double(mod.compute_cycles, 0),
                   fmt_percent(dev, 2), fmt_double(sim.total_cycles, 0),
                   fmt_double(mod.total_cycles, 0),
                   fmt_percent(total_dev, 2)});
        json.add_row({{"workload", results[2 * p].workload},
                      {"layer", probes[p].layer},
                      {"su", sim.su_name},
                      {"sim_cycles", sim.compute_cycles},
                      {"model_cycles", mod.compute_cycles},
                      {"deviation", dev},
                      {"sim_total_cycles", sim.total_cycles},
                      {"model_total_cycles", mod.total_cycles},
                      {"total_deviation", total_dev}});
    }
    std::printf("%s", t.render().c_str());
    std::printf("\nworst deviation: compute %.2f%%, total %.2f%% (target "
                "< ~10%% between independent implementations)\n",
                worst * 100.0, worst_total * 100.0);
    bench::print_runner_report(report);
    json.param("worst_deviation", worst);
    json.param("worst_total_deviation", worst_total);
    return worst < 0.15 && worst_total < 0.15 ? 0 : 1;
}
