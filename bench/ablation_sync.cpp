/**
 * @file
 * Ablation — lane-synchronization cost and the Bit-Flip balancing claim:
 * decoupled vs lockstep cycle counts from the cycle-level simulator,
 * before and after Bit-Flip, on representative layers. Each probe is a
 * pair of cycle-sim scenarios (original / Bit-Flipped weights)
 * restricted to the probed layer, run as one ScenarioRunner batch —
 * only the probed layers are ever flipped, through the shared
 * preparation cache.
 *
 * The same batch also serves as a host-side scheduler A/B: after the
 * timed run, the warm batch is re-run under the legacy static-slice
 * scheduler and the work-stealing deque core, and both wall times land
 * side by side in the JSON params (`wall_static_slice_s` /
 * `wall_worksteal_s`).
 */
#include "bench_util.hpp"

using namespace bitwave;

int
main()
{
    bench::banner("Ablation: synchronization",
                  "decoupled vs lockstep BCE scheduling, +/- Bit-Flip");
    bench::JsonReport json("ablation_sync");

    struct Probe { WorkloadId id; const char *layer; };
    const Probe probes[] = {
        {WorkloadId::kCnnLstm, "LSTM.0"},
        {WorkloadId::kCnnLstm, "fc_out"},
        {WorkloadId::kResNet18, "l4.0.down"},
        {WorkloadId::kBertBase, "layer.0.q"},
    };
    std::vector<eval::Scenario> scenarios;
    for (const auto &probe : probes) {
        eval::Scenario base;
        base.engine = eval::EngineKind::kCycleSim;
        base.workload = probe.id;
        base.layer_filter = {probe.layer};
        scenarios.push_back(base);

        eval::Scenario flipped = base;
        flipped.bitflip.mode = eval::BitflipSpec::Mode::kUniform;
        flipped.bitflip.group_size = 16;
        flipped.bitflip.zero_columns = 4;
        scenarios.push_back(std::move(flipped));
    }
    eval::RunnerReport report;
    const auto results = eval::ScenarioRunner().run(scenarios, &report);

    Table t({"layer", "decoupled", "lockstep", "sync penalty",
             "lockstep +BF", "penalty +BF"});
    for (std::size_t p = 0; p < std::size(probes); ++p) {
        const eval::LayerEval &base = results[2 * p].layers.front();
        const eval::LayerEval &bf = results[2 * p + 1].layers.front();
        t.add_row({strprintf("%s/%s", results[2 * p].workload.c_str(),
                             probes[p].layer),
                   fmt_double(base.compute_cycles, 0),
                   fmt_double(base.cycles_lockstep, 0),
                   fmt_ratio(base.cycles_lockstep / base.compute_cycles),
                   fmt_double(bf.cycles_lockstep, 0),
                   fmt_ratio(bf.cycles_lockstep / bf.compute_cycles)});
        json.add_row({{"workload", results[2 * p].workload},
                      {"layer", probes[p].layer},
                      {"decoupled", base.compute_cycles},
                      {"lockstep", base.cycles_lockstep},
                      {"sync_penalty",
                       base.cycles_lockstep / base.compute_cycles},
                      {"lockstep_bf", bf.cycles_lockstep},
                      {"sync_penalty_bf",
                       bf.cycles_lockstep / bf.compute_cycles}});
    }
    std::printf("%s", t.render().c_str());
    std::printf("\nexpected shape: Bit-Flip equalizes per-group occupancy, "
                "driving the lockstep/decoupled penalty toward 1.0 "
                "(Section III-D's balanced-workload claim).\n");
    bench::print_runner_report(report);

    // Scheduler A/B on the now-warm batch: old static-slice pool vs the
    // work-stealing deque core, same scenarios, same thread count.
    {
        const auto timed_run = [&](eval::SchedulerKind scheduler) {
            eval::RunnerOptions options;
            options.scheduler = scheduler;
            options.shard_layers = 1;  // per-layer chunks, max stealing
            eval::RunnerReport r;
            eval::ScenarioRunner(options).run(scenarios, &r);
            return r;
        };
        const eval::RunnerReport stat =
            timed_run(eval::SchedulerKind::kStaticSlice);
        const eval::RunnerReport steal =
            timed_run(eval::SchedulerKind::kWorkSteal);
        json.param("wall_static_slice_s", stat.wall_seconds);
        json.param("wall_worksteal_s", steal.wall_seconds);
        json.param("worksteal_steals", steal.steals);
        std::printf("[scheduler A/B, warm: static-slice %.3fs vs "
                    "worksteal %.3fs (%lld steals, %d threads)]\n",
                    stat.wall_seconds, steal.wall_seconds,
                    static_cast<long long>(steal.steals),
                    steal.threads_used);
    }
    return 0;
}
