/**
 * @file
 * Ablation — lane-synchronization cost and the Bit-Flip balancing claim:
 * decoupled vs lockstep cycle counts from the cycle-level simulator,
 * before and after Bit-Flip, on representative layers.
 */
#include "bench_util.hpp"
#include "bitflip/bitflip.hpp"
#include "common/logging.hpp"
#include "sim/npu.hpp"

using namespace bitwave;

int
main()
{
    bench::banner("Ablation: synchronization",
                  "decoupled vs lockstep BCE scheduling, +/- Bit-Flip");
    BitWaveNpu npu;
    Table t({"layer", "decoupled", "lockstep", "sync penalty",
             "lockstep +BF", "penalty +BF"});
    struct Probe { WorkloadId id; const char *layer; };
    const Probe probes[] = {
        {WorkloadId::kCnnLstm, "LSTM.0"},
        {WorkloadId::kCnnLstm, "fc_out"},
        {WorkloadId::kResNet18, "l4.0.down"},
        {WorkloadId::kBertBase, "layer.0.q"},
    };
    for (const auto &probe : probes) {
        const auto &w = get_workload(probe.id);
        const auto &layer = w.layers[w.layer_index(probe.layer)];
        const auto base =
            npu.run_layer(layer, nullptr, nullptr, false);
        const auto flipped = bitflip_tensor(layer.weights, 16, 4);
        const auto bf = npu.run_layer(layer, nullptr, &flipped, false);
        t.add_row({strprintf("%s/%s", w.name.c_str(), probe.layer),
                   fmt_double(base.cycles_decoupled, 0),
                   fmt_double(base.cycles_lockstep, 0),
                   fmt_ratio(base.cycles_lockstep /
                             base.cycles_decoupled),
                   fmt_double(bf.cycles_lockstep, 0),
                   fmt_ratio(bf.cycles_lockstep / bf.cycles_decoupled)});
    }
    std::printf("%s", t.render().c_str());
    std::printf("\nexpected shape: Bit-Flip equalizes per-group occupancy, "
                "driving the lockstep/decoupled penalty toward 1.0 "
                "(Section III-D's balanced-workload claim).\n");
    return 0;
}
