/**
 * @file
 * Fig. 13 — BitWave speedup breakdown: Dense [Ku=64, Cu=64] baseline,
 * then incrementally +DF (dynamic dataflow), +SM (sign-magnitude BCSeC),
 * +BF (Bit-Flip), for each benchmark network.
 */
#include "bench_util.hpp"
#include "model/performance.hpp"

using namespace bitwave;

int
main()
{
    bench::banner("Fig. 13",
                  "speedup breakdown Dense -> +DF -> +SM -> +BF "
                  "(cumulative, vs Dense)");
    Table t({"network", "+DF", "+DF+SM", "+DF+SM+BF", "step DF",
             "step SM", "step BF"});
    for (auto id : kAllWorkloads) {
        const auto &w = get_workload(id);
        const auto dense =
            AcceleratorModel(make_bitwave(BitWaveVariant::kDenseSu))
                .model_workload(w);
        const auto df =
            AcceleratorModel(make_bitwave(BitWaveVariant::kDynamicDf))
                .model_workload(w);
        const auto sm =
            AcceleratorModel(make_bitwave(BitWaveVariant::kDfSm))
                .model_workload(w);
        // The BF point flips the weight-heavy layers to 5 zero columns
        // (the Fig. 6 operating points at <= 0.5 metric drop).
        const auto flipped = bench::flip_heavy_layers(w, 0.8, 16, 5);
        const auto bf =
            AcceleratorModel(make_bitwave(BitWaveVariant::kDfSmBf))
                .model_workload(w, &flipped);

        t.add_row({w.name,
                   fmt_ratio(dense.total_cycles / df.total_cycles),
                   fmt_ratio(dense.total_cycles / sm.total_cycles),
                   fmt_ratio(dense.total_cycles / bf.total_cycles),
                   fmt_ratio(dense.total_cycles / df.total_cycles),
                   fmt_ratio(df.total_cycles / sm.total_cycles),
                   fmt_ratio(sm.total_cycles / bf.total_cycles)});
    }
    std::printf("%s", t.render().c_str());
    std::printf("\npaper anchors: DF 2.57x on MobileNetV2; SM step 1.31x/"
                "1.58x/1.75x/1.06x (ResNet18/MBv2/CNN-LSTM/Bert); BF adds "
                "2.67x on Bert-Base.\n");
    return 0;
}
