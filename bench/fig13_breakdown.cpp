/**
 * @file
 * Fig. 13 — BitWave speedup breakdown: Dense [Ku=64, Cu=64] baseline,
 * then incrementally +DF (dynamic dataflow), +SM (sign-magnitude BCSeC),
 * +BF (Bit-Flip), for each benchmark network. The variant x workload
 * grid runs as one parallel ScenarioRunner batch.
 */
#include "bench_util.hpp"

using namespace bitwave;

int
main()
{
    bench::banner("Fig. 13",
                  "speedup breakdown Dense -> +DF -> +SM -> +BF "
                  "(cumulative, vs Dense)");
    bench::JsonReport json("fig13_breakdown");

    const BitWaveVariant variants[] = {
        BitWaveVariant::kDenseSu, BitWaveVariant::kDynamicDf,
        BitWaveVariant::kDfSm, BitWaveVariant::kDfSmBf};
    std::vector<eval::Scenario> scenarios;
    for (auto id : kAllWorkloads) {
        for (auto variant : variants) {
            eval::Scenario s;
            s.accel = make_bitwave(variant);
            s.workload = id;
            if (variant == BitWaveVariant::kDfSmBf) {
                // The BF point flips the weight-heavy layers to 5 zero
                // columns (the Fig. 6 operating points at <= 0.5 drop).
                s.bitflip.mode = eval::BitflipSpec::Mode::kHeavyLayers;
                s.bitflip.weight_share = 0.8;
                s.bitflip.group_size = 16;
                s.bitflip.zero_columns = 5;
            }
            scenarios.push_back(std::move(s));
        }
    }
    eval::RunnerReport report;
    const auto results = eval::ScenarioRunner().run(scenarios, &report);

    Table t({"network", "+DF", "+DF+SM", "+DF+SM+BF", "step DF",
             "step SM", "step BF"});
    const std::size_t per_workload = std::size(variants);
    for (std::size_t w = 0; w * per_workload < results.size(); ++w) {
        const auto *r = &results[w * per_workload];
        const double dense = r[0].total_cycles;
        const double df = r[1].total_cycles;
        const double sm = r[2].total_cycles;
        const double bf = r[3].total_cycles;
        t.add_row({r[0].workload, fmt_ratio(dense / df),
                   fmt_ratio(dense / sm), fmt_ratio(dense / bf),
                   fmt_ratio(dense / df), fmt_ratio(df / sm),
                   fmt_ratio(sm / bf)});
        for (std::size_t v = 0; v < per_workload; ++v) {
            json.add_result(r[v], {{"variant",
                                    bitwave_variant_name(variants[v])},
                                   {"speedup_vs_dense",
                                    dense / r[v].total_cycles}});
        }
    }
    std::printf("%s", t.render().c_str());
    std::printf("\npaper anchors: DF 2.57x on MobileNetV2; SM step 1.31x/"
                "1.58x/1.75x/1.06x (ResNet18/MBv2/CNN-LSTM/Bert); BF adds "
                "2.67x on Bert-Base.\n");
    bench::print_runner_report(report);
    return 0;
}
