/**
 * @file
 * Table IV — power/area of the three PE flavours (one 8x8 bit-parallel
 * PE, eight 1x8 bit-serial PEs, eight 1x8 bit-column-serial PEs), plus a
 * google-benchmark micro-benchmark of the corresponding functional
 * models (throughput of the three multiply styles in this codebase).
 */
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "common/bits.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "energy/tech.hpp"
#include "eval/runner.hpp"
#include "nn/reference.hpp"
#include "sim/bce.hpp"
#include "sim/zcip.hpp"
#include "sparsity/bitcolumn.hpp"

using namespace bitwave;

namespace {

struct Operands
{
    std::vector<std::int8_t> weights;
    std::vector<std::int8_t> acts;

    Operands()
    {
        Rng rng(5);
        weights.resize(8 * 1024);
        acts.resize(8 * 1024);
        for (std::size_t i = 0; i < weights.size(); ++i) {
            weights[i] = static_cast<std::int8_t>(
                std::clamp<int>(static_cast<int>(rng.laplacian(8.0)),
                                -127, 127));
            acts[i] = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
        }
    }
};

const Operands &
operands()
{
    static const Operands ops;
    return ops;
}

/// 8x8 bit-parallel MAC reference.
void
BM_BitParallelPe(benchmark::State &state)
{
    const auto &ops = operands();
    for (auto _ : state) {
        std::int32_t acc = 0;
        for (std::size_t i = 0; i + 8 <= ops.weights.size(); i += 8) {
            acc += dot_int8(&ops.acts[i], &ops.weights[i], 8);
        }
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_BitParallelPe);

/// Classic bit-serial: one bit of one weight per step, shift per bit.
void
BM_BitSerialPe(benchmark::State &state)
{
    const auto &ops = operands();
    for (auto _ : state) {
        std::int32_t acc = 0;
        for (std::size_t i = 0; i + 8 <= ops.weights.size(); i += 8) {
            for (int j = 0; j < 8; ++j) {
                const auto sm = to_sign_magnitude(ops.weights[i +
                    static_cast<std::size_t>(j)]);
                const bool neg = (sm & 0x80) != 0;
                for (int b = 0; b < 7; ++b) {
                    if ((sm >> b) & 1) {
                        const std::int32_t p =
                            static_cast<std::int32_t>(
                                ops.acts[i + static_cast<std::size_t>(j)])
                            << b;
                        acc += neg ? -p : p;
                    }
                }
            }
        }
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_BitSerialPe);

/// Bit-column-serial: shared-significance add-then-shift through the BCE.
void
BM_BitColumnSerialPe(benchmark::State &state)
{
    const auto &ops = operands();
    ZeroColumnIndexParser parser;
    for (auto _ : state) {
        std::int32_t acc = 0;
        for (std::size_t i = 0; i + 8 <= ops.weights.size(); i += 8) {
            const std::span<const std::int8_t> grp(&ops.weights[i], 8);
            const auto decode = parser.parse(
                column_index(grp, Representation::kSignMagnitude));
            std::vector<std::uint64_t> cols;
            for (int shift : decode.shifts) {
                cols.push_back(column_bits(
                    grp, shift, Representation::kSignMagnitude));
            }
            acc += bce_group_pass(
                {&ops.acts[i], 8}, decode, {cols.data(), cols.size()},
                column_bits(grp, 7, Representation::kSignMagnitude));
        }
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_BitColumnSerialPe);

}  // namespace

int
main(int argc, char **argv)
{
    bench::banner("Table IV", "area and power of the three PE types");
    const auto &t = default_tech();
    Table table({"PE type", "power (mW)", "area (um^2)",
                 "vs bit-parallel"});
    table.add_row({"one 8x8 bit-parallel PE",
                   strprintf("%.3e", t.p_pe_bit_parallel_mw),
                   fmt_double(t.a_pe_bit_parallel_um2, 3), "1.00x"});
    table.add_row({"eight 1x8 bit-serial PE",
                   strprintf("%.3e", t.p_pe_bit_serial_mw),
                   fmt_double(t.a_pe_bit_serial_um2, 3),
                   strprintf("%.2fx area, %.2fx power",
                             t.a_pe_bit_serial_um2 /
                                 t.a_pe_bit_parallel_um2,
                             t.p_pe_bit_serial_mw /
                                 t.p_pe_bit_parallel_mw)});
    table.add_row({"eight 1x8 bit-column-serial PE",
                   strprintf("%.3e", t.p_pe_bit_column_mw),
                   fmt_double(t.a_pe_bit_column_um2, 3),
                   strprintf("%.2fx area, %.2fx power",
                             t.a_pe_bit_column_um2 /
                                 t.a_pe_bit_parallel_um2,
                             t.p_pe_bit_column_mw /
                                 t.p_pe_bit_parallel_mw)});
    std::printf("%s\n", table.render().c_str());

    // System-level consequence of the PE choice: one ScenarioRunner
    // batch evaluating the same workload under the three compute styles.
    bench::JsonReport json("table4_pe_types");
    std::vector<eval::Scenario> scenarios;
    for (const auto &cfg : {make_dense_reference(), make_stripes(),
                            make_bitwave(BitWaveVariant::kDenseSu)}) {
        eval::Scenario s;
        s.accel = cfg;
        s.workload = WorkloadId::kResNet18;
        scenarios.push_back(std::move(s));
    }
    eval::RunnerReport report;
    const auto results = eval::ScenarioRunner().run(scenarios, &report);
    Table styles({"accelerator (style)", "cycles (M)", "energy (mJ)",
                  "TOPS/W"});
    for (const auto &r : results) {
        styles.add_row({r.accelerator, fmt_double(r.total_cycles / 1e6),
                        fmt_double(r.energy.total_pj * 1e-9, 3),
                        fmt_double(r.tops_per_watt(), 3)});
        json.add_result(r);
    }
    std::printf("modeled ResNet18 under each compute style:\n%s\n",
                styles.render().c_str());
    json.write();

    std::printf("functional-model throughput (google-benchmark):\n");

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
