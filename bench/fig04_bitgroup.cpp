/**
 * @file
 * Fig. 4 — bit-group analysis of ResNet18 conv2 with G = 4: zero-column
 * counts under two's complement vs sign-magnitude, and the Bit-Flip
 * enhancement of panel (c).
 */
#include "bench_util.hpp"
#include "bitflip/bitflip.hpp"
#include "sparsity/bitcolumn.hpp"
#include "sparsity/stats.hpp"

using namespace bitwave;

int
main()
{
    bench::banner("Fig. 4",
                  "ResNet18 conv2 bit-column sparsity, G = 4 along C");
    const auto &w = get_workload(WorkloadId::kResNet18);
    const auto &conv2 = w.layers[w.layer_index("l1.0.conv1")];
    const auto vs = compute_sparsity(conv2.weights);

    Table t({"representation", "zero-value %", "zero-column %",
             "vs 2C"});
    const double c2 = analyze_bit_columns(conv2.weights, 4,
                                          Representation::kTwosComplement)
                          .column_sparsity();
    const double csm = analyze_bit_columns(conv2.weights, 4,
                                           Representation::kSignMagnitude)
                           .column_sparsity();
    t.add_row({"2's complement", fmt_percent(vs.value_sparsity()),
               fmt_percent(c2), "1.00x"});
    t.add_row({"sign-magnitude", fmt_percent(vs.value_sparsity()),
               fmt_percent(csm), fmt_ratio(csm / c2)});
    std::printf("%s", t.render().c_str());
    std::printf("\npaper: ~20%% zero values, 17%% zero columns (2C), "
                "59%% (SM) = 3.4x improvement.\n");

    // Panel (c): Bit-Flip raises the SM column sparsity further.
    std::printf("\nBit-Flip enhancement (SM, G = 4):\n");
    Table bf({"target zero columns", "achieved zero-column %"});
    for (int z : {0, 3, 5, 6}) {
        const auto flipped =
            z == 0 ? conv2.weights : bitflip_tensor(conv2.weights, 4, z);
        bf.add_row({std::to_string(z),
                    fmt_percent(analyze_bit_columns(
                                    flipped, 4,
                                    Representation::kSignMagnitude)
                                    .column_sparsity())});
    }
    std::printf("%s", bf.render().c_str());
    return 0;
}
