/**
 * @file
 * Fig. 4 — bit-group analysis of ResNet18 conv2 with G = 4: zero-column
 * counts under two's complement vs sign-magnitude, and the Bit-Flip
 * enhancement of panel (c). One kStats scenario per flip target (the
 * probe layer only, via the scenario layer filter), run as a
 * ScenarioRunner batch; flipped tensors come from the shared Bit-Flip
 * preparation cache.
 */
#include "bench_util.hpp"

using namespace bitwave;

int
main()
{
    bench::banner("Fig. 4",
                  "ResNet18 conv2 bit-column sparsity, G = 4 along C");
    bench::JsonReport json("fig04_bitgroup");
    json.param("layer", "l1.0.conv1");
    json.param("group_size", 4);

    // One scenario per Bit-Flip target (0 = original weights), all
    // restricted to the probed layer.
    const int targets[] = {0, 3, 5, 6};
    std::vector<eval::Scenario> scenarios;
    for (int z : targets) {
        eval::Scenario s;
        s.engine = eval::EngineKind::kStats;
        s.workload = WorkloadId::kResNet18;
        s.layer_filter = {"l1.0.conv1"};
        s.stats.group_size = 4;
        if (z > 0) {
            s.bitflip.mode = eval::BitflipSpec::Mode::kUniform;
            s.bitflip.group_size = 4;
            s.bitflip.zero_columns = z;
        }
        scenarios.push_back(std::move(s));
    }
    eval::RunnerReport report;
    const auto results = eval::ScenarioRunner().run(scenarios, &report);

    const auto &base = *results[0].layers.front().stats;
    Table t({"representation", "zero-value %", "zero-column %", "vs 2C"});
    const double c2 = base.columns_2c.column_sparsity();
    const double csm = base.columns_sm.column_sparsity();
    t.add_row({"2's complement",
               fmt_percent(base.sparsity.value_sparsity()),
               fmt_percent(c2), "1.00x"});
    t.add_row({"sign-magnitude",
               fmt_percent(base.sparsity.value_sparsity()),
               fmt_percent(csm), fmt_ratio(csm / c2)});
    std::printf("%s", t.render().c_str());
    std::printf("\npaper: ~20%% zero values, 17%% zero columns (2C), "
                "59%% (SM) = 3.4x improvement.\n");

    // Panel (c): Bit-Flip raises the SM column sparsity further.
    std::printf("\nBit-Flip enhancement (SM, G = 4):\n");
    Table bf({"target zero columns", "achieved zero-column %"});
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &stats = *results[i].layers.front().stats;
        bf.add_row({std::to_string(targets[i]),
                    fmt_percent(stats.columns_sm.column_sparsity())});
        json.add_row({
            {"target_zero_columns", targets[i]},
            {"value_sparsity", stats.sparsity.value_sparsity()},
            {"column_sparsity_2c", stats.columns_2c.column_sparsity()},
            {"column_sparsity_sm", stats.columns_sm.column_sparsity()},
        });
    }
    std::printf("%s", bf.render().c_str());
    bench::print_runner_report(report);
    return 0;
}
