/**
 * @file
 * Fig. 16 — BitWave energy breakdown including off-chip DRAM, per
 * benchmark network.
 */
#include "bench_util.hpp"
#include "model/performance.hpp"

using namespace bitwave;

int
main()
{
    bench::banner("Fig. 16",
                  "BitWave energy breakdown incl. off-chip DRAM");
    Table t({"network", "MAC", "SRAM", "register", "static/clock", "DRAM",
             "total (mJ)"});
    for (auto id : kAllWorkloads) {
        const auto &w = get_workload(id);
        const auto r =
            AcceleratorModel(make_bitwave(BitWaveVariant::kDfSm))
                .model_workload(w);
        const double total = r.total_energy_pj;
        t.add_row({w.name, fmt_percent(r.energy_mac_pj / total),
                   fmt_percent(r.energy_sram_pj / total),
                   fmt_percent(r.energy_reg_pj / total),
                   fmt_percent(r.energy_static_pj / total),
                   fmt_percent(r.energy_dram_pj / total),
                   fmt_double(total * 1e-9, 3)});
    }
    std::printf("%s", t.render().c_str());
    std::printf("\npaper: DRAM is the dominant factor, especially for "
                "weight-intensive networks (all weights cross DRAM at "
                "least once).\n");
    return 0;
}
