/**
 * @file
 * Fig. 16 — BitWave energy breakdown including off-chip DRAM, per
 * benchmark network. One analytical scenario per network, run as a
 * ScenarioRunner batch.
 */
#include "bench_util.hpp"

using namespace bitwave;

int
main()
{
    bench::banner("Fig. 16",
                  "BitWave energy breakdown incl. off-chip DRAM");
    bench::JsonReport json("fig16_energy_breakdown");

    std::vector<eval::Scenario> scenarios;
    for (auto id : kAllWorkloads) {
        eval::Scenario s;
        s.accel = make_bitwave(BitWaveVariant::kDfSm);
        s.workload = id;
        scenarios.push_back(std::move(s));
    }
    eval::RunnerReport report;
    const auto results = eval::ScenarioRunner().run(scenarios, &report);

    Table t({"network", "MAC", "SRAM", "register", "static/clock", "DRAM",
             "total (mJ)"});
    for (const auto &r : results) {
        const double total = r.energy.total_pj;
        t.add_row({r.workload, fmt_percent(r.energy.mac_pj / total),
                   fmt_percent(r.energy.sram_pj / total),
                   fmt_percent(r.energy.reg_pj / total),
                   fmt_percent(r.energy.static_pj / total),
                   fmt_percent(r.energy.dram_pj / total),
                   fmt_double(total * 1e-9, 3)});
        json.add_result(
            r, {{"mac_share", r.energy.mac_pj / total},
                {"sram_share", r.energy.sram_pj / total},
                {"reg_share", r.energy.reg_pj / total},
                {"static_share", r.energy.static_pj / total},
                {"dram_share", r.energy.dram_pj / total},
                // Informational mirror of the shape that
                // Fig16.BreakdownShapesMatchPaper asserts on the model
                // directly: on chip, BitWave's energy goes to the
                // datapath and the SRAM stream, not registers or idle
                // clocks.
                {"onchip_mac_sram_dominated",
                 r.energy.mac_pj + r.energy.sram_pj >
                     r.energy.reg_pj + r.energy.static_pj}});
    }
    std::printf("%s", t.render().c_str());
    std::printf("\npaper: DRAM is the dominant factor, especially for "
                "weight-intensive networks (all weights cross DRAM at "
                "least once). The uncompressed baselines stay "
                "DRAM-dominated too; SCNN's Bert blowup is on-chip "
                "(see fig15).\n");
    bench::print_runner_report(report);
    return 0;
}
