/**
 * @file
 * Fig. 16 — BitWave energy breakdown including off-chip DRAM, per
 * benchmark network.
 */
#include "bench_util.hpp"
#include "model/performance.hpp"

using namespace bitwave;

int
main()
{
    bench::banner("Fig. 16",
                  "BitWave energy breakdown incl. off-chip DRAM");
    Table t({"network", "MAC", "SRAM", "register", "static/clock", "DRAM",
             "total (mJ)"});
    for (auto id : kAllWorkloads) {
        const auto &w = get_workload(id);
        const auto r =
            AcceleratorModel(make_bitwave(BitWaveVariant::kDfSm))
                .model_workload(w);
        const double total = r.energy.total_pj;
        t.add_row({w.name, fmt_percent(r.energy.mac_pj / total),
                   fmt_percent(r.energy.sram_pj / total),
                   fmt_percent(r.energy.reg_pj / total),
                   fmt_percent(r.energy.static_pj / total),
                   fmt_percent(r.energy.dram_pj / total),
                   fmt_double(total * 1e-9, 3)});
    }
    std::printf("%s", t.render().c_str());
    std::printf("\npaper: DRAM is the dominant factor, especially for "
                "weight-intensive networks (all weights cross DRAM at "
                "least once).\n");
    return 0;
}
