/**
 * @file
 * Fig. 6 — Bit-Flip sensitivity and the CR/accuracy trade-off:
 *  (a-d) layer-wise flipping sensitivity: metric estimate when a single
 *        layer is forced to z zero columns,
 *  (e-h) CR vs metric for Int8+PTQ, Int8+SM (lossless), and
 *        Int8+SM+Bit-Flip applied to the weight-heavy layers.
 *
 * Compression ratios come from kStats scenarios (one per Bit-Flip
 * operating point) run as a ScenarioRunner batch; all flipped tensors —
 * the per-layer probes of (a-d) and the heavy-layer sets of (e-h) —
 * share the process-wide Bit-Flip preparation cache.
 */
#include "bench_util.hpp"
#include "nn/accuracy.hpp"
#include "tensor/quantize.hpp"

using namespace bitwave;

int
main()
{
    bench::JsonReport json("fig06_bitflip");

    // ---- (a-d): layer-wise flip sensitivity ------------------------------
    bench::banner("Fig. 6(a-d)", "layer-wise weight-flip sensitivity");
    struct Probe { WorkloadId id; std::vector<const char *> layers; };
    const Probe probes[] = {
        {WorkloadId::kResNet18, {"l1.0.conv1", "l2.1.conv2", "l4.1.conv2"}},
        {WorkloadId::kMobileNetV2, {"L.2.pw_proj", "L.27.pw_exp", "fc"}},
        {WorkloadId::kCnnLstm, {"conv2", "LSTM.0", "LSTM.1"}},
        {WorkloadId::kBertBase,
         {"layer.1.ffn_in", "layer.6.ffn_in", "layer.11.ffn_in"}},
    };
    for (const auto &probe : probes) {
        const auto &w = get_workload(probe.id);
        AccuracyProxy proxy(w);
        std::printf("%s (%s, base %.2f):\n", w.name.c_str(),
                    w.metric_name.c_str(), w.base_metric);
        Table t({"layer \\ zero columns", "z=2", "z=4", "z=6", "z=7"});
        for (const char *name : probe.layers) {
            const std::size_t idx = w.layer_index(name);
            std::vector<std::string> row{name};
            for (int z : {2, 4, 6, 7}) {
                const auto flipped = eval::cached_bitflip(
                    w.layers[idx].weights, w.layers[idx].weights_hash, 16,
                    z);
                const double metric =
                    proxy.metric_with_layer(idx, *flipped);
                row.push_back(fmt_double(metric));
                json.add_row({{"panel", "sensitivity"},
                              {"workload", w.name},
                              {"layer", name},
                              {"zero_columns", z},
                              {"metric", metric}});
            }
            t.add_row(std::move(row));
        }
        std::printf("%s\n", t.render().c_str());
    }
    std::printf("expected shape: early / weight-light layers lose more "
                "metric at the same z than late / heavy layers.\n");

    // ---- (e-h): CR vs accuracy Pareto ------------------------------------
    bench::banner("Fig. 6(e-h)",
                  "CR vs metric: Int8+PTQ vs Int8+SM vs Int8+SM+Bit-Flip");

    // One kStats scenario per (workload, operating point): the lossless
    // SM baseline plus the heavy-layer Bit-Flip points.
    const int flip_targets[] = {0, 4, 5, 6};  // 0 = lossless
    const double kHeavyShare = 0.75;
    std::vector<eval::Scenario> scenarios;
    for (auto id : kAllWorkloads) {
        for (int z : flip_targets) {
            eval::Scenario s;
            s.engine = eval::EngineKind::kStats;
            s.workload = id;
            s.stats.bcs = true;
            if (z > 0) {
                s.bitflip.mode = eval::BitflipSpec::Mode::kHeavyLayers;
                s.bitflip.weight_share = kHeavyShare;
                s.bitflip.group_size = 16;
                s.bitflip.zero_columns = z;
            }
            scenarios.push_back(std::move(s));
        }
    }
    eval::RunnerReport report;
    const auto results = eval::ScenarioRunner().run(scenarios, &report);

    const auto workload_cr = [](const eval::ScenarioResult &r) {
        double orig = 0.0, comp = 0.0;
        for (const auto &l : r.layers) {
            orig += static_cast<double>(l.stats->weight_bits);
            comp += static_cast<double>(l.stats->bcs_sm_bits);
        }
        return orig / comp;
    };

    const std::size_t per_workload = std::size(flip_targets);
    for (std::size_t wi = 0; wi < std::size(kAllWorkloads); ++wi) {
        const auto id = kAllWorkloads[wi];
        const auto &w = get_workload(id);
        AccuracyProxy proxy(w);
        std::printf("%s (%s, base %.2f):\n", w.name.c_str(),
                    w.metric_name.c_str(), w.base_metric);
        Table t({"scheme", "CR", w.metric_name});
        const auto *rows = &results[wi * per_workload];

        t.add_row({"Int8+SM (lossless)", fmt_ratio(workload_cr(rows[0])),
                   fmt_double(w.base_metric)});
        json.add_row({{"panel", "pareto"}, {"workload", w.name},
                      {"scheme", "Int8+SM"},
                      {"cr", workload_cr(rows[0])},
                      {"metric", w.base_metric}});

        // PTQ baseline: cut LSBs across every tensor.
        for (int bits : {6, 5, 4}) {
            double weighted = 0.0;
            for (std::size_t l = 0; l < w.layers.size(); ++l) {
                const auto ptq =
                    requantize_to_bits(w.layers[l].weights, bits);
                weighted += proxy.depth_weight(l) *
                    proxy.layer_rel_error(l, ptq);
            }
            const double metric =
                w.base_metric - w.error_sensitivity * weighted;
            t.add_row({strprintf("Int8+PTQ (%db)", bits),
                       fmt_ratio(ptq_compression_ratio(bits)),
                       fmt_double(metric)});
            json.add_row({{"panel", "pareto"}, {"workload", w.name},
                          {"scheme", strprintf("Int8+PTQ (%db)", bits)},
                          {"cr", ptq_compression_ratio(bits)},
                          {"metric", metric}});
        }

        // Bit-Flip on the heavy layers (paper protocol: ~70-80 % of the
        // weights flipped to 4..6 zero columns). Tensors come from the
        // same cache the scenarios above used.
        for (std::size_t zi = 1; zi < per_workload; ++zi) {
            const int z = flip_targets[zi];
            const auto flipped =
                eval::cached_flip_heavy_layers(w, kHeavyShare, 16, z);
            double weighted = 0.0;
            for (std::size_t l = 0; l < w.layers.size(); ++l) {
                if (flipped[l]) {
                    weighted += proxy.depth_weight(l) *
                        proxy.layer_rel_error(l, *flipped[l]);
                }
            }
            const double metric =
                w.base_metric - w.error_sensitivity * weighted;
            t.add_row({strprintf("Int8+SM+BF (z=%d)", z),
                       fmt_ratio(workload_cr(rows[zi])),
                       fmt_double(metric)});
            json.add_row({{"panel", "pareto"}, {"workload", w.name},
                          {"scheme", strprintf("Int8+SM+BF (z=%d)", z)},
                          {"cr", workload_cr(rows[zi])},
                          {"metric", metric}});
        }
        std::printf("%s\n", t.render().c_str());
    }
    std::printf("paper anchors: ResNet18 2.04x CR @ <0.5%% drop; "
                "CNN-LSTM 3.45x @ ~0.5 PESQ; MobileNetV2 1.81x @ 0.8%%; "
                "Bert 1.46x lossless-accuracy / 2.47x @ <0.5 F1. "
                "Bit-Flip should dominate PTQ at matched CR.\n");
    bench::print_runner_report(report);
    return 0;
}
