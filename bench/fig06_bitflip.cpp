/**
 * @file
 * Fig. 6 — Bit-Flip sensitivity and the CR/accuracy trade-off:
 *  (a-d) layer-wise flipping sensitivity: metric estimate when a single
 *        layer is forced to z zero columns,
 *  (e-h) CR vs metric for Int8+PTQ, Int8+SM (lossless), and
 *        Int8+SM+Bit-Flip applied to the weight-heavy layers.
 */
#include "bench_util.hpp"
#include "bitflip/bitflip.hpp"
#include "compress/bcs.hpp"
#include "nn/accuracy.hpp"
#include "tensor/quantize.hpp"

using namespace bitwave;

namespace {

double
workload_cr(const std::vector<Int8Tensor> &weights)
{
    std::int64_t orig = 0;
    double comp = 0.0;
    for (const auto &t : weights) {
        const auto c = bcs_compress(t, 16, Representation::kSignMagnitude);
        orig += c.original_bits();
        comp += static_cast<double>(c.compressed_bits());
    }
    return static_cast<double>(orig) / comp;
}

}  // namespace

int
main()
{
    // ---- (a-d): layer-wise flip sensitivity ------------------------------
    bench::banner("Fig. 6(a-d)", "layer-wise weight-flip sensitivity");
    struct Probe { WorkloadId id; std::vector<const char *> layers; };
    const Probe probes[] = {
        {WorkloadId::kResNet18, {"l1.0.conv1", "l2.1.conv2", "l4.1.conv2"}},
        {WorkloadId::kMobileNetV2, {"L.2.pw_proj", "L.27.pw_exp", "fc"}},
        {WorkloadId::kCnnLstm, {"conv2", "LSTM.0", "LSTM.1"}},
        {WorkloadId::kBertBase,
         {"layer.1.ffn_in", "layer.6.ffn_in", "layer.11.ffn_in"}},
    };
    for (const auto &probe : probes) {
        const auto &w = get_workload(probe.id);
        AccuracyProxy proxy(w);
        std::printf("%s (%s, base %.2f):\n", w.name.c_str(),
                    w.metric_name.c_str(), w.base_metric);
        Table t({"layer \\ zero columns", "z=2", "z=4", "z=6", "z=7"});
        for (const char *name : probe.layers) {
            const std::size_t idx = w.layer_index(name);
            std::vector<std::string> row{name};
            for (int z : {2, 4, 6, 7}) {
                const auto flipped =
                    bitflip_tensor(w.layers[idx].weights, 16, z);
                row.push_back(
                    fmt_double(proxy.metric_with_layer(idx, flipped)));
            }
            t.add_row(std::move(row));
        }
        std::printf("%s\n", t.render().c_str());
    }
    std::printf("expected shape: early / weight-light layers lose more "
                "metric at the same z than late / heavy layers.\n");

    // ---- (e-h): CR vs accuracy Pareto ------------------------------------
    bench::banner("Fig. 6(e-h)",
                  "CR vs metric: Int8+PTQ vs Int8+SM vs Int8+SM+Bit-Flip");
    for (auto id : kAllWorkloads) {
        const auto &w = get_workload(id);
        AccuracyProxy proxy(w);
        std::printf("%s (%s, base %.2f):\n", w.name.c_str(),
                    w.metric_name.c_str(), w.base_metric);
        Table t({"scheme", "CR", w.metric_name});

        // Lossless SM baseline.
        std::vector<Int8Tensor> base_weights;
        for (const auto &l : w.layers) {
            base_weights.push_back(l.weights);
        }
        t.add_row({"Int8+SM (lossless)",
                   fmt_ratio(workload_cr(base_weights)),
                   fmt_double(w.base_metric)});

        // PTQ baseline: cut LSBs across every tensor.
        for (int bits : {6, 5, 4}) {
            std::vector<Int8Tensor> ptq;
            double weighted = 0.0;
            for (std::size_t l = 0; l < w.layers.size(); ++l) {
                ptq.push_back(
                    requantize_to_bits(w.layers[l].weights, bits));
                weighted += proxy.depth_weight(l) *
                    proxy.layer_rel_error(l, ptq.back());
            }
            const double metric =
                w.base_metric - w.error_sensitivity * weighted;
            t.add_row({strprintf("Int8+PTQ (%db)", bits),
                       fmt_ratio(ptq_compression_ratio(bits)),
                       fmt_double(metric)});
        }

        // Bit-Flip on the heavy layers (paper protocol: ~70-80 % of the
        // weights flipped to 4..6 zero columns).
        for (int z : {4, 5, 6}) {
            const auto flipped = bench::flip_heavy_layers(w, 0.75, 16, z);
            double weighted = 0.0;
            for (std::size_t l = 0; l < w.layers.size(); ++l) {
                if (!(flipped[l] == w.layers[l].weights)) {
                    weighted += proxy.depth_weight(l) *
                        proxy.layer_rel_error(l, flipped[l]);
                }
            }
            const double metric =
                w.base_metric - w.error_sensitivity * weighted;
            t.add_row({strprintf("Int8+SM+BF (z=%d)", z),
                       fmt_ratio(workload_cr(flipped)),
                       fmt_double(metric)});
        }
        std::printf("%s\n", t.render().c_str());
    }
    std::printf("paper anchors: ResNet18 2.04x CR @ <0.5%% drop; "
                "CNN-LSTM 3.45x @ ~0.5 PESQ; MobileNetV2 1.81x @ 0.8%%; "
                "Bert 1.46x lossless-accuracy / 2.47x @ <0.5 F1. "
                "Bit-Flip should dominate PTQ at matched CR.\n");
    return 0;
}
