/**
 * @file
 * Fig. 18 + Section V-D — BitWave area and power breakdown at the
 * ResNet18 / 250 MHz / 0.8 V operating point.
 */
#include "bench_util.hpp"
#include "energy/breakdown.hpp"

using namespace bitwave;

int
main()
{
    bench::banner("Fig. 18", "BitWave area and power breakdown (16 nm)");
    const auto budget = bitwave_chip_budget(default_tech());
    Table t({"component", "area (mm^2)", "area %", "power (mW)",
             "power %"});
    for (const auto &c : budget.components) {
        t.add_row({c.name, fmt_double(c.area_mm2(), 4),
                   fmt_percent(c.area_mm2() / budget.total_area_mm2()),
                   fmt_double(c.power_mw, 3),
                   fmt_percent(c.power_mw / budget.total_power_mw())});
    }
    t.add_row({"TOTAL", fmt_double(budget.total_area_mm2(), 3), "100%",
               fmt_double(budget.total_power_mw(), 2), "100%"});
    std::printf("%s", t.render().c_str());
    std::printf("\npaper: 1.138 mm^2 / 17.56 mW; SRAM 55.08%% of area, "
                "PE array 57.6%% of power / 24.7%% of area, dispatcher "
                "10.8%% area / 24.4%% power.\n");
    return 0;
}
