/**
 * @file
 * Fig. 18 + Section V-D — BitWave area and power breakdown at the
 * ResNet18 / 250 MHz / 0.8 V operating point. The operating point
 * itself (modeled average power while running ResNet18) is regenerated
 * through a ScenarioRunner batch and cross-checked against the static
 * chip budget.
 */
#include "bench_util.hpp"
#include "energy/breakdown.hpp"

using namespace bitwave;

int
main()
{
    bench::banner("Fig. 18", "BitWave area and power breakdown (16 nm)");
    bench::JsonReport json("fig18_area_power");

    const auto budget = bitwave_chip_budget(default_tech());
    Table t({"component", "area (mm^2)", "area %", "power (mW)",
             "power %"});
    for (const auto &c : budget.components) {
        t.add_row({c.name, fmt_double(c.area_mm2(), 4),
                   fmt_percent(c.area_mm2() / budget.total_area_mm2()),
                   fmt_double(c.power_mw, 3),
                   fmt_percent(c.power_mw / budget.total_power_mw())});
        json.add_row({{"component", c.name},
                      {"area_mm2", c.area_mm2()},
                      {"power_mw", c.power_mw}});
    }
    t.add_row({"TOTAL", fmt_double(budget.total_area_mm2(), 3), "100%",
               fmt_double(budget.total_power_mw(), 2), "100%"});
    std::printf("%s", t.render().c_str());
    std::printf("\npaper: 1.138 mm^2 / 17.56 mW; SRAM 55.08%% of area, "
                "PE array 57.6%% of power / 24.7%% of area, dispatcher "
                "10.8%% area / 24.4%% power.\n");

    // The Section V-D operating point: modeled on-chip power while
    // running ResNet18 at the tech frequency.
    eval::Scenario s;
    s.accel = make_bitwave(BitWaveVariant::kDfSm);
    s.workload = WorkloadId::kResNet18;
    eval::RunnerReport report;
    const auto results = eval::ScenarioRunner().run({s}, &report);
    const auto &r = results.front();
    const double on_chip_pj = r.energy.total_pj - r.energy.dram_pj;
    const double runtime_s = r.runtime_ms() * 1e-3;
    const double modeled_mw = on_chip_pj * 1e-9 / runtime_s;
    std::printf("\nmodeled on-chip power @ ResNet18: %.2f mW "
                "(chip budget %.2f mW)\n", modeled_mw,
                budget.total_power_mw());
    json.add_result(r, {{"on_chip_power_mw", modeled_mw},
                        {"budget_power_mw", budget.total_power_mw()},
                        {"area_mm2", budget.total_area_mm2()}});
    bench::print_runner_report(report);
    return 0;
}
