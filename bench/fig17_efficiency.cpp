/**
 * @file
 * Fig. 17 — energy efficiency (useful operations per energy) normalized
 * to SCNN, per benchmark network.
 */
#include "bench_util.hpp"
#include "model/performance.hpp"

using namespace bitwave;

int
main()
{
    bench::banner("Fig. 17",
                  "energy efficiency normalized to SCNN (higher=better)");
    Table t({"network", "SCNN", "Stripes", "Pragmatic", "Bitlet", "HUAA",
             "BitWave"});
    for (auto id : kAllWorkloads) {
        const auto &w = get_workload(id);
        const auto scnn = AcceleratorModel(make_scnn()).model_workload(w);
        const auto flipped = bench::flip_heavy_layers(w, 0.8, 16, 5);
        const double eff[] = {
            scnn.tops_per_watt(),
            AcceleratorModel(make_stripes()).model_workload(w)
                .tops_per_watt(),
            AcceleratorModel(make_pragmatic()).model_workload(w)
                .tops_per_watt(),
            AcceleratorModel(make_bitlet()).model_workload(w)
                .tops_per_watt(),
            AcceleratorModel(make_huaa()).model_workload(w)
                .tops_per_watt(),
            AcceleratorModel(make_bitwave(BitWaveVariant::kDfSmBf))
                .model_workload(w, &flipped).tops_per_watt(),
        };
        std::vector<std::string> row{w.name};
        for (double e : eff) {
            row.push_back(fmt_ratio(e / eff[0]));
        }
        t.add_row(std::move(row));
    }
    std::printf("%s", t.render().c_str());
    std::printf("\npaper anchors: BitWave 7.71x over SCNN and 2.04x over "
                "HUAA on Bert-Base; BitWave best everywhere.\n");
    return 0;
}
