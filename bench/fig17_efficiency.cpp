/**
 * @file
 * Fig. 17 — energy efficiency (useful operations per energy) normalized
 * to SCNN, per benchmark network. The accelerator x workload grid runs
 * as one parallel ScenarioRunner batch.
 */
#include "bench_util.hpp"

using namespace bitwave;

int
main()
{
    bench::banner("Fig. 17",
                  "energy efficiency normalized to SCNN (higher=better)");
    bench::JsonReport json("fig17_efficiency");

    const AcceleratorConfig baselines[] = {make_scnn(), make_stripes(),
                                           make_pragmatic(), make_bitlet(),
                                           make_huaa()};
    std::vector<eval::Scenario> scenarios;
    for (auto id : kAllWorkloads) {
        for (const auto &cfg : baselines) {
            eval::Scenario s;
            s.accel = cfg;
            s.workload = id;
            scenarios.push_back(std::move(s));
        }
        eval::Scenario bw;
        bw.accel = make_bitwave(BitWaveVariant::kDfSmBf);
        bw.workload = id;
        bw.bitflip.mode = eval::BitflipSpec::Mode::kHeavyLayers;
        bw.bitflip.weight_share = 0.8;
        bw.bitflip.group_size = 16;
        bw.bitflip.zero_columns = 5;
        scenarios.push_back(std::move(bw));
    }
    eval::RunnerReport report;
    const auto results = eval::ScenarioRunner().run(scenarios, &report);

    const std::size_t per_workload = std::size(baselines) + 1;
    Table t({"network", "SCNN", "Stripes", "Pragmatic", "Bitlet", "HUAA",
             "BitWave"});
    for (std::size_t w = 0; w * per_workload < results.size(); ++w) {
        const auto *r = &results[w * per_workload];
        const double scnn_eff = r[0].tops_per_watt();
        std::vector<std::string> row{r[0].workload};
        for (std::size_t a = 0; a < per_workload; ++a) {
            const double ratio = r[a].tops_per_watt() / scnn_eff;
            row.push_back(fmt_ratio(ratio));
            json.add_result(r[a], {{"efficiency_vs_scnn", ratio}});
        }
        t.add_row(std::move(row));
    }
    std::printf("%s", t.render().c_str());
    std::printf("\npaper anchors: BitWave 7.71x over SCNN and 2.04x over "
                "HUAA on Bert-Base; BitWave best everywhere.\n");
    bench::print_runner_report(report);
    return 0;
}
