/**
 * @file
 * Fig. 17 — energy efficiency (useful operations per energy) normalized
 * to SCNN, per benchmark network. The accelerator x workload grid runs
 * as one parallel ScenarioRunner batch.
 */
#include "bench_util.hpp"

using namespace bitwave;

int
main()
{
    bench::banner("Fig. 17",
                  "energy efficiency normalized to SCNN (higher=better)");
    bench::JsonReport json("fig17_efficiency");

    const auto scenarios = bench::paper_grid();
    eval::RunnerReport report;
    const auto results = eval::ScenarioRunner().run(scenarios, &report);

    // Paper anchors, emitted machine-readably like fig14/fig15: BitWave
    // averages 7.71x SCNN's efficiency across the benchmark networks
    // and is 2.04x HUAA's on Bert-Base. CI asserts the deviations stay
    // within +-20 %.
    constexpr double kVsScnnAvgAnchor = 7.71;
    constexpr double kVsHuaaBertAnchor = 2.04;

    const std::size_t per_workload = bench::kPaperGridPerWorkload;
    Table t({"network", "SCNN", "Stripes", "Pragmatic", "Bitlet", "HUAA",
             "BitWave"});
    double bw_vs_scnn_sum = 0.0;
    double bw_vs_huaa_bert = 0.0;
    std::size_t workloads = 0;
    for (std::size_t w = 0; w * per_workload < results.size(); ++w) {
        const auto *r = &results[w * per_workload];
        const double scnn_eff = r[0].tops_per_watt();
        std::vector<std::string> row{r[0].workload};
        ++workloads;
        bw_vs_scnn_sum += r[per_workload - 1].tops_per_watt() / scnn_eff;
        for (std::size_t a = 0; a < per_workload; ++a) {
            const double ratio = r[a].tops_per_watt() / scnn_eff;
            row.push_back(fmt_ratio(ratio));
            json.add_result(r[a], {{"efficiency_vs_scnn", ratio}});
            if (r[a].accelerator == "HUAA" &&
                r[a].workload == "Bert-Base") {
                bw_vs_huaa_bert = r[per_workload - 1].tops_per_watt() /
                    r[a].tops_per_watt();
            }
        }
        t.add_row(std::move(row));
    }
    const double bw_vs_scnn_avg =
        bw_vs_scnn_sum / static_cast<double>(workloads);
    bench::add_anchor_param(json, "bitwave_vs_scnn_avg", bw_vs_scnn_avg,
                            kVsScnnAvgAnchor);
    bench::add_anchor_param(json, "bitwave_vs_huaa_bertbase",
                            bw_vs_huaa_bert, kVsHuaaBertAnchor);
    std::printf("%s", t.render().c_str());
    std::printf("\npaper anchors: BitWave 7.71x over SCNN on average "
                "(reproduced: %.2fx) and 2.04x over HUAA on Bert-Base "
                "(reproduced: %.2fx); BitWave best everywhere.\n",
                bw_vs_scnn_avg, bw_vs_huaa_bert);
    bench::print_runner_report(report);
    return 0;
}
