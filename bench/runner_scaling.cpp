/**
 * @file
 * Runner scaling bench — strong-scaling sweep of the ScenarioRunner's
 * work-stealing core against the legacy static-slice baseline.
 *
 * Two sweeps share one thread grid (1/2/4/8/hw, both SchedulerKind
 * values):
 *
 *  - Identity: a warm mixed batch (analytical BitWave grid over every
 *    workload with and without heavy-layer Bit-Flip, one statistics
 *    scenario, one cycle-sim probe) re-runs at every sweep point and
 *    must reproduce the 1-thread golden results bit for bit — the
 *    determinism contract the adversarial tests enforce, measured here
 *    on a real batch.
 *  - Timing: the content-addressed caches make a repeated batch free,
 *    so each sweep point times a *fresh* batch instead — privately
 *    synthesized workloads (distinct `workload_seed` per point) with
 *    identical shapes, so every point pays the same synthesis and
 *    evaluation cost and nothing is served from a previous point's
 *    cache entries.
 *
 * Emits BENCH_runner_scaling.json; CI validates the row keys and
 * bit-identity always, and gates the 8-thread parallel efficiency when
 * the runner machine actually has that many cores.  `--metrics` arms
 * the registry and prints the Prometheus snapshot after the sweep;
 * `--trace <path>` records runner spans and writes Chrome trace JSON.
 */
#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"

using namespace bitwave;

namespace {

using bench::identical_results;

const char *
scheduler_name(eval::SchedulerKind kind)
{
    return kind == eval::SchedulerKind::kWorkSteal ? "worksteal"
                                                   : "static_slice";
}

/// Warm identity batch: long analytical scenarios (BERT-Base dominates),
/// a bag of short ones, one stats scenario and one cycle-sim probe —
/// the imbalanced shape static slicing handles worst.
std::vector<eval::Scenario>
make_identity_batch()
{
    std::vector<eval::Scenario> batch;
    for (WorkloadId id : kAllWorkloads) {
        eval::Scenario s;
        s.engine = eval::EngineKind::kAnalytical;
        s.accel = make_bitwave(BitWaveVariant::kDfSmBf);
        s.workload = id;
        batch.push_back(s);

        eval::Scenario flipped = s;
        flipped.bitflip.mode = eval::BitflipSpec::Mode::kHeavyLayers;
        flipped.bitflip.weight_share = 0.8;
        flipped.bitflip.group_size = 16;
        flipped.bitflip.zero_columns = 5;
        batch.push_back(std::move(flipped));
    }
    eval::Scenario stats;
    stats.engine = eval::EngineKind::kStats;
    stats.workload = WorkloadId::kMobileNetV2;
    batch.push_back(std::move(stats));

    eval::Scenario sim;
    sim.engine = eval::EngineKind::kCycleSim;
    sim.workload = WorkloadId::kCnnLstm;
    sim.layer_filter = {"LSTM.0"};
    batch.push_back(std::move(sim));
    return batch;
}

/// Timed batch for sweep point @p point: same shapes at every point,
/// but privately synthesized weights (per-scenario seeds) so no point
/// hits the content caches a previous point filled. BERT-Base is left
/// out — private synthesis of it would swamp the evaluation being
/// timed.
std::vector<eval::Scenario>
make_timed_batch(std::uint64_t point)
{
    std::vector<eval::Scenario> batch;
    std::uint64_t slot = 0;
    for (WorkloadId id : {WorkloadId::kResNet18, WorkloadId::kMobileNetV2,
                          WorkloadId::kCnnLstm}) {
        eval::Scenario s;
        s.engine = eval::EngineKind::kAnalytical;
        s.accel = make_bitwave(BitWaveVariant::kDfSmBf);
        s.workload = id;
        s.workload_seed = 0xB17A0000ULL + point * 64 + slot++;
        batch.push_back(s);

        eval::Scenario flipped = s;
        flipped.workload_seed = 0xB17A0000ULL + point * 64 + slot++;
        flipped.bitflip.mode = eval::BitflipSpec::Mode::kUniform;
        flipped.bitflip.group_size = 16;
        flipped.bitflip.zero_columns = 4;
        batch.push_back(std::move(flipped));
    }
    return batch;
}

}  // namespace

int
main(int argc, char **argv)
{
    bool print_metrics = false;
    std::string trace_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--metrics") {
            print_metrics = true;
        } else if (arg == "--trace" && i + 1 < argc) {
            trace_path = argv[i + 1];
            ++i;
        }
    }
    if (print_metrics) {
        metrics::set_enabled(true);
    }
    if (!trace_path.empty() && !trace::enabled()) {
        trace::start();
    }
    bench::banner("Runner scaling",
                  "work-stealing vs static-slice strong scaling, "
                  "bit-identity across thread counts");
    bench::JsonReport json("runner_scaling");

    const auto identity_batch = make_identity_batch();
    const auto run_identity = [&](int threads,
                                  eval::SchedulerKind scheduler) {
        eval::RunnerOptions options;
        options.threads = threads;
        options.shard_layers = 4;
        options.scheduler = scheduler;
        return eval::ScenarioRunner(options).run(identity_batch);
    };
    // Warms every cache and pins the golden results each sweep point
    // must reproduce.
    const auto golden = run_identity(1, eval::SchedulerKind::kWorkSteal);

    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    std::vector<int> sweep = {1, 2, 4, 8};
    if (std::find(sweep.begin(), sweep.end(), static_cast<int>(hw)) ==
        sweep.end()) {
        sweep.push_back(static_cast<int>(hw));
    }
    std::sort(sweep.begin(), sweep.end());

    // Serial timing reference: point 0's batch at one thread.
    double wall_1t = 0.0;
    {
        eval::RunnerReport report;
        eval::RunnerOptions options;
        options.threads = 1;
        options.shard_layers = 4;
        eval::ScenarioRunner(options).run(make_timed_batch(0), &report);
        wall_1t = report.wall_seconds;
    }

    Table t({"threads", "scheduler", "wall", "speedup", "efficiency",
             "steals", "identical"});
    double efficiency_at_max = 1.0;
    std::int64_t steals_at_max = 0;
    bool all_identical = true;
    std::uint64_t point = 1;
    for (const int threads : sweep) {
        for (const eval::SchedulerKind scheduler :
             {eval::SchedulerKind::kWorkSteal,
              eval::SchedulerKind::kStaticSlice}) {
            const bool identical = identical_results(
                golden, run_identity(threads, scheduler));

            eval::RunnerReport report;
            eval::RunnerOptions options;
            options.threads = threads;
            options.shard_layers = 4;
            options.scheduler = scheduler;
            eval::ScenarioRunner(options).run(make_timed_batch(point++),
                                              &report);
            const double wall = report.wall_seconds;
            const double speedup = wall > 0.0 ? wall_1t / wall : 0.0;
            const double efficiency = speedup / threads;
            if (scheduler == eval::SchedulerKind::kWorkSteal &&
                threads == sweep.back()) {
                efficiency_at_max = efficiency;
                steals_at_max = report.steals;
            }
            all_identical = all_identical && identical;
            t.add_row({strprintf("%d", threads),
                       scheduler_name(scheduler),
                       strprintf("%.3fs", wall), fmt_ratio(speedup),
                       fmt_percent(efficiency, 1),
                       strprintf("%lld",
                                 static_cast<long long>(report.steals)),
                       identical ? "yes" : "NO"});
            json.add_row({{"threads", threads},
                          {"scheduler", scheduler_name(scheduler)},
                          {"wall_s", wall},
                          {"speedup_vs_1t", speedup},
                          {"efficiency", efficiency},
                          {"steals", report.steals},
                          {"identical", identical}});
        }
    }

    json.param("hardware_concurrency", hw);
    json.param("identity_scenarios", identity_batch.size());
    json.param("timed_scenarios", make_timed_batch(0).size());
    json.param("serial_wall_s", wall_1t);
    json.param("max_threads", sweep.back());
    json.param("scaling_efficiency", efficiency_at_max);
    json.param("steals_at_max", steals_at_max);
    json.param("bit_identical", all_identical);

    std::printf("%s", t.render().c_str());
    std::printf("\nhardware_concurrency=%u; every sweep point re-ran the "
                "warm identity batch bit-identically to the 1-thread "
                "golden run. Timed walls use fresh privately-synthesized "
                "batches so the content caches cannot serve a previous "
                "point's work. Thread counts above the core count "
                "measure oversubscription, not scaling.\n", hw);
    if (!trace_path.empty()) {
        const std::size_t written = trace::write_json(trace_path);
        std::printf("\nwrote %zu trace events to %s\n", written,
                    trace_path.c_str());
    }
    if (print_metrics) {
        std::printf("\n%s",
                    metrics::render_prometheus(metrics::snapshot())
                        .c_str());
    }
    return all_identical ? 0 : 1;
}
