/**
 * @file
 * Fig. 14 — speedup of every modeled accelerator, normalized to SCNN,
 * per benchmark network. The full accelerator x workload grid runs as
 * one parallel ScenarioRunner batch.
 */
#include "bench_util.hpp"
#include "eval/runner.hpp"

using namespace bitwave;

int
main()
{
    bench::banner("Fig. 14", "speedup normalized to SCNN (higher=better)");
    bench::JsonReport json("fig14_speedup");

    // Grid: per workload — five baselines plus BitWave with the paper's
    // heavy-layer Bit-Flip protocol (shared factory in bench_util).
    const auto scenarios = bench::paper_grid();
    eval::RunnerReport report;
    const auto results = eval::ScenarioRunner().run(scenarios, &report);

    // Paper anchors on BitWave's bars, emitted machine-readably
    // (`anchor` / `deviation`) so the reproduction trajectory is
    // trackable; CI asserts the deviations stay within +-20 %.
    const std::size_t per_workload = bench::kPaperGridPerWorkload;
    Table t({"network", "SCNN", "Stripes", "Pragmatic", "Bitlet", "HUAA",
             "BitWave"});
    for (std::size_t w = 0; w * per_workload < results.size(); ++w) {
        const auto *row_results = &results[w * per_workload];
        const double scnn_cycles = row_results[0].total_cycles;
        std::vector<std::string> row{row_results[0].workload};
        for (std::size_t a = 0; a < per_workload; ++a) {
            const double speedup =
                scnn_cycles / row_results[a].total_cycles;
            row.push_back(fmt_ratio(speedup));
            bench::JsonObject extra{{"speedup_vs_scnn", speedup}};
            const auto &res = row_results[a];
            if (a == per_workload - 1 &&
                (res.workload == "CNN-LSTM" ||
                 res.workload == "Bert-Base")) {
                const double anchor =
                    res.workload == "CNN-LSTM" ? 10.1 : 13.25;
                bench::add_anchor(extra, speedup, anchor);
            }
            json.add_result(row_results[a], std::move(extra));
        }
        t.add_row(std::move(row));
    }
    std::printf("%s", t.render().c_str());
    std::printf("\npaper anchors: BitWave 10.1x (CNN-LSTM) and 13.25x "
                "(Bert-Base) over SCNN; BitWave > 2x Bitlet; BitWave "
                "fastest everywhere.\n");
    bench::print_runner_report(report);
    return 0;
}
