/**
 * @file
 * Fig. 14 — speedup of every modeled accelerator, normalized to SCNN,
 * per benchmark network.
 */
#include "bench_util.hpp"
#include "model/performance.hpp"

using namespace bitwave;

int
main()
{
    bench::banner("Fig. 14", "speedup normalized to SCNN (higher=better)");
    Table t({"network", "SCNN", "Stripes", "Pragmatic", "Bitlet", "HUAA",
             "BitWave"});
    for (auto id : kAllWorkloads) {
        const auto &w = get_workload(id);
        const auto scnn = AcceleratorModel(make_scnn()).model_workload(w);
        const auto flipped = bench::flip_heavy_layers(w, 0.8, 16, 5);
        const double cycles[] = {
            scnn.total_cycles,
            AcceleratorModel(make_stripes()).model_workload(w).total_cycles,
            AcceleratorModel(make_pragmatic())
                .model_workload(w).total_cycles,
            AcceleratorModel(make_bitlet()).model_workload(w).total_cycles,
            AcceleratorModel(make_huaa()).model_workload(w).total_cycles,
            AcceleratorModel(make_bitwave(BitWaveVariant::kDfSmBf))
                .model_workload(w, &flipped).total_cycles,
        };
        std::vector<std::string> row{w.name};
        for (double c : cycles) {
            row.push_back(fmt_ratio(scnn.total_cycles / c));
        }
        t.add_row(std::move(row));
    }
    std::printf("%s", t.render().c_str());
    std::printf("\npaper anchors: BitWave 10.1x (CNN-LSTM) and 13.25x "
                "(Bert-Base) over SCNN; BitWave > 2x Bitlet; Pragmatic "
                "~1.4x; BitWave fastest everywhere.\n");
    return 0;
}
