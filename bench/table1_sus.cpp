/**
 * @file
 * Table I — the seven BitWave spatial unrollings with their weight and
 * activation bandwidth requirements.
 */
#include "bench_util.hpp"
#include "dataflow/su.hpp"

using namespace bitwave;

int
main()
{
    bench::banner("Table I", "BitWave SUs and per-cycle bandwidths");
    Table t({"SU", "factors", "W BW (bit/cycle)", "Act BW (bit/cycle)",
             "bit cols/cycle", "group size"});
    for (const auto &su : bitwave_sus()) {
        std::string factors;
        for (const auto &[dim, f] : su.factors) {
            factors += strprintf("%s%su=%lld", factors.empty() ? "" : ", ",
                                 dim_name(dim),
                                 static_cast<long long>(f));
        }
        if (su.depthwise_only) {
            factors += " (depthwise)";
        }
        t.add_row({su.name, factors,
                   std::to_string(su.weight_bandwidth_bits()),
                   std::to_string(su.activation_bandwidth_bits()),
                   std::to_string(su.bit_columns),
                   std::to_string(su.group_size())});
    }
    std::printf("%s", t.render().c_str());
    std::printf("\npaper Table I: W BW 256/512/1024/1024/1024/1024/64, "
                "Act BW 1024/1024/1024/64/128/256/1024.\n");
    return 0;
}
