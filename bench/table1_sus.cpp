/**
 * @file
 * Table I — the seven BitWave spatial unrollings with their weight and
 * activation bandwidth requirements, plus an achieved-utilization probe:
 * each SU evaluated alone over the Fig. 9 case layers as a
 * ScenarioRunner batch, showing why the top controller reconfigures the
 * SU per layer.
 */
#include "bench_util.hpp"
#include "dataflow/su.hpp"
#include "nn/synthesis.hpp"

using namespace bitwave;

int
main()
{
    bench::banner("Table I", "BitWave SUs and per-cycle bandwidths");
    bench::JsonReport json("table1_sus");

    Table t({"SU", "factors", "W BW (bit/cycle)", "Act BW (bit/cycle)",
             "bit cols/cycle", "group size"});
    for (const auto &su : bitwave_sus()) {
        std::string factors;
        for (const auto &[dim, f] : su.factors) {
            factors += strprintf("%s%su=%lld", factors.empty() ? "" : ", ",
                                 dim_name(dim),
                                 static_cast<long long>(f));
        }
        if (su.depthwise_only) {
            factors += " (depthwise)";
        }
        t.add_row({su.name, factors,
                   std::to_string(su.weight_bandwidth_bits()),
                   std::to_string(su.activation_bandwidth_bits()),
                   std::to_string(su.bit_columns),
                   std::to_string(su.group_size())});
        json.add_row({{"su", su.name},
                      {"factors", factors},
                      {"weight_bw_bits", su.weight_bandwidth_bits()},
                      {"act_bw_bits", su.activation_bandwidth_bits()},
                      {"bit_columns", su.bit_columns},
                      {"group_size", su.group_size()}});
    }
    std::printf("%s", t.render().c_str());
    std::printf("\npaper Table I: W BW 256/512/1024/1024/1024/1024/64, "
                "Act BW 1024/1024/1024/64/128/256/1024.\n");

    // Achieved utilization when one SU must serve every case layer: a
    // single-SU scenario per Table I entry over the Fig. 9 case shapes.
    auto cases = std::make_shared<Workload>();
    cases->name = "table1-cases";
    Rng rng(1);
    const LayerDesc case_descs[] = {
        make_conv("early", 64, 3, 112, 112, 7, 7, 2),
        make_conv("late", 512, 512, 7, 7, 3, 3),
        make_depthwise("Dwcv", 96, 56, 56, 3),
        make_pointwise("Pwcv", 96, 16, 112, 112),
    };
    for (const auto &desc : case_descs) {
        WorkloadLayer layer;
        layer.desc = desc;
        layer.weights = synthesize_weights(desc, WeightProfile{}, rng);
        layer.activation_sparsity = 0.4;
        layer.weights_hash = layer.compute_weights_hash();
        cases->layers.push_back(std::move(layer));
    }

    std::vector<eval::Scenario> scenarios;
    for (const auto &su : bitwave_sus()) {
        eval::Scenario s;
        s.custom_workload = cases;
        s.accel = make_bitwave(BitWaveVariant::kDynamicDf);
        s.accel.name = su.name;
        s.accel.dataflows = {su};
        scenarios.push_back(std::move(s));
    }
    eval::RunnerReport report;
    const auto results = eval::ScenarioRunner().run(scenarios, &report);

    std::printf("\nachieved utilization when one SU serves all case "
                "layers:\n");
    Table probe({"SU", "early", "late", "Dwcv", "Pwcv"});
    for (const auto &r : results) {
        std::vector<std::string> row{r.accelerator};
        for (const auto &l : r.layers) {
            row.push_back(fmt_percent(l.utilization));
            json.add_row({{"su", r.accelerator},
                          {"layer", l.layer_name},
                          {"utilization", l.utilization}});
        }
        probe.add_row(std::move(row));
    }
    std::printf("%s", probe.render().c_str());
    bench::print_runner_report(report);
    return 0;
}
