/**
 * @file
 * Design-space exploration bench: enumerate BitWave hardware design
 * points (SU subsets, uniform group sizes, SMM budgets, weight-buffer
 * capacities, both mapping policies), evaluate each on ResNet18 +
 * BERT-Base through the ScenarioRunner, and reduce to the pareto front
 * over (latency, energy, area).
 *
 * The paper's Table I configuration is one of the enumerated points;
 * the front must contain it (CI validates the emitted
 * BENCH_dse_pareto.json: non-empty front, >= 200 enumerated points,
 * Table I SU set present and non-dominated).
 */
#include <algorithm>

#include "bench_util.hpp"
#include "search/explore.hpp"

using namespace bitwave;

int
main()
{
    bench::banner("DSE pareto",
                  "hardware design-space exploration, ResNet18 + BERT");
    bench::JsonReport json("dse_pareto");

    const search::ExploreSpec spec;  // The default >= 200-point space.
    eval::RunnerReport report;
    std::vector<search::DesignPoint> infeasible;
    eval::RunnerOptions options;
    std::vector<search::DesignEval> evals;
    {
        // explore_designs runs its own ScenarioRunner batch; wrap it to
        // surface the runner diagnostics in the bench footer.
        const auto t0 = std::chrono::steady_clock::now();
        evals = search::explore_designs(spec, options, &infeasible);
        report.wall_seconds = std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0).count();
    }

    const std::size_t enumerated = evals.size() + infeasible.size();
    std::size_t front_size = 0;
    bool table1_on_front = false;
    double table1_cycles = 0.0;
    for (const auto &e : evals) {
        if (e.pareto) {
            ++front_size;
        }
        if (e.design.table1_su_set && e.design.smm_budget == 4096 &&
            e.design.policy == search::MappingPolicy::kCostAware &&
            e.design.weight_sram_bytes == 256 * 1024) {
            table1_on_front |= e.pareto;
            table1_cycles = e.total_cycles;
        }
    }

    json.param("workloads", "ResNet18+BertBase");
    json.param("designs_enumerated", static_cast<double>(enumerated));
    json.param("designs_feasible", static_cast<double>(evals.size()));
    json.param("designs_infeasible",
               static_cast<double>(infeasible.size()));
    json.param("front_size", static_cast<double>(front_size));
    json.param("table1_on_front", table1_on_front);

    for (const auto &e : evals) {
        bench::JsonObject row{
            {"design", e.design.name},
            {"su_set", e.design.su_set},
            {"policy", search::mapping_policy_name(e.design.policy)},
            {"smm_budget", e.design.smm_budget},
            {"weight_sram_kb", e.design.weight_sram_bytes / 1024},
            {"act_sram_kb", e.design.act_sram_bytes / 1024},
            {"cycles", e.total_cycles},
            {"energy_pj", e.energy_pj},
            {"area_mm2", e.area_mm2},
            {"pareto", e.pareto},
            {"table1", e.design.table1_su_set &&
                           e.design.smm_budget == 4096},
        };
        for (std::size_t k = 0; k < spec.workloads.size(); ++k) {
            row.emplace_back(
                std::string("cycles_") +
                    workload_name(spec.workloads[k]),
                e.workload_cycles[k]);
        }
        json.add_row(std::move(row));
    }

    // Human-readable: the front, best-latency first.
    std::vector<const search::DesignEval *> front;
    for (const auto &e : evals) {
        if (e.pareto) {
            front.push_back(&e);
        }
    }
    std::sort(front.begin(), front.end(),
              [](const auto *a, const auto *b) {
                  return a->total_cycles < b->total_cycles;
              });
    Table t({"design", "SMM", "W-SRAM", "Mcycles", "energy mJ",
             "area mm2"});
    for (const auto *e : front) {
        t.add_row({e->design.name, std::to_string(e->design.smm_budget),
                   std::to_string(e->design.weight_sram_bytes / 1024) +
                       "K",
                   strprintf("%.2f", e->total_cycles / 1e6),
                   strprintf("%.2f", e->energy_pj / 1e9),
                   strprintf("%.3f", e->area_mm2)});
    }
    std::printf("pareto front (%zu of %zu feasible, %zu enumerated, "
                "%zu infeasible pruned):\n%s",
                front_size, evals.size(), enumerated, infeasible.size(),
                t.render().c_str());
    std::printf("\nTable I SU set (4096 SMM, 256K+256K, cost-aware): "
                "%.2f Mcycles, %s the pareto front.\n",
                table1_cycles / 1e6,
                table1_on_front ? "ON" : "NOT on");
    std::printf("[explore wall %.2fs]\n", report.wall_seconds);
    return table1_on_front && enumerated >= 200 ? 0 : 1;
}
