/**
 * @file
 * Table III — comparison with the state of the art. Literature rows are
 * quoted from the paper; the BitWave row is regenerated bottom-up from
 * our models (chip budget + best-case modeled throughput), including the
 * 28 nm-normalized columns.
 */
#include "bench_util.hpp"
#include "energy/breakdown.hpp"
#include "eval/runner.hpp"

using namespace bitwave;

int
main()
{
    bench::banner("Table III", "comparison with state-of-the-art");
    bench::JsonReport json("table3_sota");

    // Modeled BitWave instance.
    const auto &tech = default_tech();
    const auto budget = bitwave_chip_budget(tech);
    // Peak: 512 MAC/cycle x 250 MHz x 2 ops, boosted by the mean column
    // skipping measured on the benchmark suite (~8/5 columns).
    const double peak_dense_gops =
        512.0 * tech.frequency_hz * 2.0 / 1e9;
    double best_sparse_gops = peak_dense_gops;
    {
        const eval::Scenario s =
            bench::bitwave_flagship_scenario(WorkloadId::kCnnLstm);
        const auto results = eval::ScenarioRunner().run({s});
        best_sparse_gops = std::max(best_sparse_gops,
                                    results.front().gops());
        json.add_result(results.front());
    }
    const double area = budget.total_area_mm2();
    const double power_w = budget.total_power_mw() * 1e-3;
    const double tops_per_w = best_sparse_gops / 1e3 / power_w;
    json.param("best_sparse_gops", best_sparse_gops);
    json.param("area_mm2", area);
    json.param("power_mw", budget.total_power_mw());
    json.param("tops_per_watt", tops_per_w);

    Table t({"design", "tech", "freq (MHz)", "power", "peak GOPS",
             "TOPS/W", "area (mm^2)", "norm. area @28nm",
             "norm. TOPS/W @28nm"});
    t.add_row({"Tegra X2 (paper)", "16nm", "1465", "15 W", "750 (fp32)",
               "0.05", "-", "-", "0.042"});
    t.add_row({"A100 (paper)", "7nm", "1410", "400 W", "1248 (8b)",
               "1.5-3.1", "826", "13216", "1.04-2.15"});
    t.add_row({"Stripes (paper)", "65nm", "980", "-", "-", "-", "122.1",
               "22.6", "-"});
    t.add_row({"Pragmatic (paper)", "65nm", "-", "51.6 W", "-", "-", "157",
               "29.1", "-"});
    t.add_row({"SCNN (paper)", "16nm", "1000", "-", "2000", "-", "7.9",
               "24.2", "-"});
    t.add_row({"Bitlet (paper)", "28nm", "1000", "366 mW", "372 (16b)",
               "0.667-1.33", "1.54", "1.54", "0.667-1.33"});
    t.add_row({"HUAA (paper)", "28nm", "100-500", "17-174 mW", "-",
               "7.5-11.2", "7.81", "7.81", "7.5-11.2"});
    t.add_row({"BitWave (ours, modeled)", "16nm",
               strprintf("%.0f", tech.frequency_hz / 1e6),
               strprintf("%.2f mW", budget.total_power_mw()),
               strprintf("%.1f (8b)", best_sparse_gops),
               strprintf("%.2f", tops_per_w), strprintf("%.3f", area),
               strprintf("%.2f", scale_area(area, 16.0, 28.0)),
               strprintf("%.2f", scale_efficiency(tops_per_w, 16.0,
                                                  28.0))});
    std::printf("%s", t.render().c_str());
    std::printf("\npaper BitWave row: 250 MHz, 17.56 mW, 215.6 GOPS peak, "
                "12.21 TOPS/W, 1.138 mm^2 (3.49 mm^2 @28nm).\n");
    return 0;
}
